/**
 * @file
 * Tests for the event-driven simulation kernel: idle-edge
 * fast-forward equivalence against the slow path (the determinism
 * argument of docs/ARCHITECTURE.md), interval-statistic bit-identity,
 * marker/stall interaction, and the watchdog no-progress panic that
 * the kernel extraction must not drop.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/processor.hh"
#include "workload/suite.hh"

using namespace mcd;
using namespace mcd::sim;
using namespace mcd::workload;

namespace
{

Program
mixedProgram(double load_frac = 0.2, double fp_frac = 0.1)
{
    ProgramBuilder b("mixed");
    InstructionMix m;
    m.set(InstrClass::Load, load_frac)
        .set(InstrClass::FpAdd, fp_frac)
        .branches(0.1, 0.02)
        .mem(16 * 1024, 0.9);
    MixId mx = b.mix(m);
    b.func("leaf");
    b.block(mx, 40);
    b.func("main");
    // The call in the loop body makes the stream marker-rich
    // (function enter/exit per iteration), which the marker-handler
    // test needs.
    b.loop(400, 0.0, [&] {
        b.block(mx, 10);
        b.call("leaf");
    });
    return b.build("main");
}

struct RecordedIntervals : IntervalHook
{
    std::vector<IntervalStats> stats;
    bool drive = false;

    void
    onInterval(const IntervalStats &s, DvfsControl &ctl) override
    {
        stats.push_back(s);
        if (drive) {
            // React to the observed occupancy so a stats divergence
            // would cascade into a timing divergence.
            ctl.setTarget(Domain::FloatingPoint,
                          s.queueOcc[domainIndex(
                              Domain::FloatingPoint)] < 0.2
                              ? 250.0
                              : 1000.0);
            ctl.setTarget(Domain::Integer,
                          s.ipc < 1.0 ? 600.0 : 1000.0);
        }
    }
};

/** Every integer-valued field of two results must be equal; energy
 *  may differ only in floating-point summation order. */
void
expectEquivalent(const RunResult &slow, const RunResult &fast)
{
    EXPECT_EQ(slow.timePs, fast.timePs);
    EXPECT_EQ(slow.instrs, fast.instrs);
    EXPECT_EQ(slow.feCycles, fast.feCycles);
    EXPECT_DOUBLE_EQ(slow.ipc, fast.ipc);
    EXPECT_EQ(slow.branches, fast.branches);
    EXPECT_EQ(slow.mispredicts, fast.mispredicts);
    EXPECT_EQ(slow.l1dAccesses, fast.l1dAccesses);
    EXPECT_EQ(slow.l1dMisses, fast.l1dMisses);
    EXPECT_EQ(slow.l2Misses, fast.l2Misses);
    EXPECT_EQ(slow.icacheMisses, fast.icacheMisses);
    EXPECT_EQ(slow.dramAccesses, fast.dramAccesses);
    EXPECT_EQ(slow.reconfigs, fast.reconfigs);
    EXPECT_EQ(slow.overheadCycles, fast.overheadCycles);
    EXPECT_NEAR(fast.chipEnergyNj, slow.chipEnergyNj,
                1e-9 * slow.chipEnergyNj);
    EXPECT_DOUBLE_EQ(slow.dramEnergyNj, fast.dramEnergyNj);
    for (Domain d : scaledDomains()) {
        EXPECT_NEAR(fast.avgFreq[domainIndex(d)],
                    slow.avgFreq[domainIndex(d)],
                    1e-9 * slow.avgFreq[domainIndex(d)]);
    }
}

} // namespace

TEST(Kernel, FastForwardMatchesSlowPathOnSuiteBench)
{
    for (const char *bench : {"gsm_decode", "swim"}) {
        Benchmark bm = makeBenchmark(bench);
        RunResult r[2];
        for (int ff = 0; ff < 2; ++ff) {
            SimConfig cfg;
            cfg.fastForward = ff != 0;
            power::PowerConfig pcfg;
            Processor proc(cfg, pcfg, bm.program, bm.train);
            r[ff] = proc.run(20000);
        }
        SCOPED_TRACE(bench);
        expectEquivalent(r[0], r[1]);
        EXPECT_EQ(r[0].ffEdges, 0u);
        EXPECT_GT(r[1].ffEdges, 0u);
    }
}

TEST(Kernel, FastForwardSkipsMostIdleFpDomainEdges)
{
    // Integer-only workload with the FP domain scaled down: its
    // clock should be almost entirely fast-forwarded, and results
    // must match the slow path exactly.
    Program p = mixedProgram(0.2, 0.0);
    InputSet in;
    RunResult r[2];
    for (int ff = 0; ff < 2; ++ff) {
        SimConfig cfg;
        cfg.fastForward = ff != 0;
        power::PowerConfig pcfg;
        Processor proc(cfg, pcfg, p, in);
        proc.setInitialFreqs({1000.0, 1000.0, 250.0, 1000.0});
        r[ff] = proc.run(20000);
    }
    expectEquivalent(r[0], r[1]);
    // The idle FP domain alone accounts for ~1/7th of all edges
    // here (250 MHz against three 1 GHz clocks).
    EXPECT_GT(r[1].ffEdges, r[1].feCycles / 8);
}

TEST(Kernel, ScheduleWithRampsMatchesSlowPath)
{
    // Reconfigurations force ramps, during which no domain may park;
    // edge times and every counter must still match exactly.
    Program p = mixedProgram();
    InputSet in;
    RunResult r[2];
    for (int ff = 0; ff < 2; ++ff) {
        SimConfig cfg;
        cfg.fastForward = ff != 0;
        power::PowerConfig pcfg;
        Processor proc(cfg, pcfg, p, in);
        std::vector<SchedulePoint> sched;
        for (int i = 1; i <= 8; ++i) {
            SchedulePoint pt;
            pt.atInstr = static_cast<std::uint64_t>(i) * 2000;
            Mhz f = (i % 2) ? 400.0 : 1000.0;
            pt.freqs = {f, 1000.0 - 50.0 * i, f, 900.0};
            sched.push_back(pt);
        }
        proc.setSchedule(sched);
        r[ff] = proc.run(18000);
    }
    expectEquivalent(r[0], r[1]);
    EXPECT_EQ(r[0].reconfigs, 8u);
}

TEST(Kernel, IntervalStatsBitIdenticalAcrossModes)
{
    // The statistics a controller observes — including the occupancy
    // *averages*, whose denominators count idle edges — must be
    // bit-identical, or closed-loop policies would diverge between
    // the kernel modes.
    Program p = mixedProgram();
    InputSet in;
    RecordedIntervals rec[2];
    RunResult r[2];
    for (int ff = 0; ff < 2; ++ff) {
        SimConfig cfg;
        cfg.fastForward = ff != 0;
        power::PowerConfig pcfg;
        Processor proc(cfg, pcfg, p, in);
        rec[ff].drive = true;
        proc.setIntervalHook(&rec[ff], 2000);
        r[ff] = proc.run(20000);
    }
    expectEquivalent(r[0], r[1]);
    ASSERT_EQ(rec[0].stats.size(), rec[1].stats.size());
    ASSERT_GE(rec[0].stats.size(), 9u);
    for (std::size_t i = 0; i < rec[0].stats.size(); ++i) {
        const IntervalStats &a = rec[0].stats[i];
        const IntervalStats &b = rec[1].stats[i];
        EXPECT_EQ(a.instrs, b.instrs);
        EXPECT_EQ(a.timePs, b.timePs);
        EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
        EXPECT_DOUBLE_EQ(a.robOcc, b.robOcc);
        for (Domain d : scaledDomains())
            EXPECT_DOUBLE_EQ(a.queueOcc[domainIndex(d)],
                             b.queueOcc[domainIndex(d)]);
    }
}

TEST(Kernel, TraceRecordsIdenticalAcrossModes)
{
    struct Collect : TraceSink
    {
        std::vector<InstrTiming> items;
        void
        onInstr(const InstrTiming &t) override
        {
            items.push_back(t);
        }
    };
    Program p = mixedProgram(0.25, 0.1);
    InputSet in;
    Collect sink[2];
    for (int ff = 0; ff < 2; ++ff) {
        SimConfig cfg;
        cfg.fastForward = ff != 0;
        power::PowerConfig pcfg;
        Processor proc(cfg, pcfg, p, in);
        proc.setTraceSink(&sink[ff]);
        proc.run(8000);
    }
    ASSERT_EQ(sink[0].items.size(), sink[1].items.size());
    for (std::size_t i = 0; i < sink[0].items.size(); ++i) {
        const InstrTiming &a = sink[0].items[i];
        const InstrTiming &b = sink[1].items[i];
        ASSERT_EQ(a.seq, b.seq);
        EXPECT_EQ(a.fetch, b.fetch);
        EXPECT_EQ(a.dispatch, b.dispatch);
        EXPECT_EQ(a.issue, b.issue);
        EXPECT_EQ(a.execDone, b.execDone);
        EXPECT_EQ(a.memStart, b.memStart);
        EXPECT_EQ(a.memDone, b.memDone);
        EXPECT_EQ(a.commit, b.commit);
    }
}

TEST(Kernel, SingleClockModeMatchesAcrossModes)
{
    Program p = mixedProgram();
    InputSet in;
    RunResult r[2];
    for (int ff = 0; ff < 2; ++ff) {
        SimConfig cfg;
        cfg.singleClock = true;
        cfg.fastForward = ff != 0;
        power::PowerConfig pcfg;
        Processor proc(cfg, pcfg, p, in);
        r[ff] = proc.run(15000);
    }
    expectEquivalent(r[0], r[1]);
}

namespace
{

/** Marker handler that periodically stalls the front end and
 *  reconfigures, exercising the fetch-stall idle horizon. */
struct StallingHandler : MarkerHandler
{
    int seen = 0;

    MarkerAction
    onMarker(const Marker &) override
    {
        MarkerAction a;
        ++seen;
        if (seen % 7 == 0) {
            a.stallCycles = 5;
            a.energyPj = 120.0;
        }
        if (seen % 31 == 0) {
            a.reconfig = true;
            Mhz f = (seen % 62 == 0) ? 1000.0 : 500.0;
            a.freqs = {1000.0, f, 500.0, f};
        }
        return a;
    }
};

} // namespace

TEST(Kernel, MarkerStallsAndReconfigsMatchAcrossModes)
{
    Program p = mixedProgram();
    InputSet in;
    RunResult r[2];
    for (int ff = 0; ff < 2; ++ff) {
        SimConfig cfg;
        cfg.fastForward = ff != 0;
        power::PowerConfig pcfg;
        Processor proc(cfg, pcfg, p, in);
        StallingHandler h;
        proc.setMarkerHandler(&h);
        r[ff] = proc.run(15000);
    }
    expectEquivalent(r[0], r[1]);
    EXPECT_GT(r[0].overheadCycles, 0u);
    EXPECT_GT(r[0].reconfigs, 0u);
}

/**
 * The watchdog must survive the kernel extraction: a run that stops
 * committing for longer than watchdogPs has to panic (abort), in
 * both kernel modes.  An impossibly small watchdogPs trips it on the
 * very first edge, before the first commit can happen.
 */
using KernelDeathTest = ::testing::TestWithParam<bool>;

TEST_P(KernelDeathTest, WatchdogPanicsWithoutCommitProgress)
{
    Program p = mixedProgram();
    InputSet in;
    SimConfig cfg;
    cfg.fastForward = GetParam();
    cfg.watchdogPs = 10;  // first edge arrives after ~1000 ps
    power::PowerConfig pcfg;
    Processor proc(cfg, pcfg, p, in);
    EXPECT_DEATH(proc.run(1000), "no commit progress");
}

INSTANTIATE_TEST_SUITE_P(Modes, KernelDeathTest,
                         ::testing::Values(false, true));
