/**
 * @file
 * Tests for the combined bimodal + PAg branch predictor and BTB.
 */

#include <gtest/gtest.h>

#include "sim/branch.hh"

using namespace mcd::sim;

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    std::uint64_t pc = 0x4000;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, true, pc + 64);
    auto p = bp.predict(pc);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.btbHit);
    EXPECT_EQ(p.target, pc + 64);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    std::uint64_t pc = 0x5000;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, false, 0);
    EXPECT_FALSE(bp.predict(pc).taken);
}

TEST(BranchPredictor, PagLearnsAlternatingPattern)
{
    BranchPredictor bp;
    std::uint64_t pc = 0x6000;
    // T N T N ... : bimodal is ~50% but PAg locks on via history.
    bool t = false;
    for (int i = 0; i < 400; ++i) {
        t = !t;
        bp.update(pc, t, pc + 32);
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        t = !t;
        if (bp.predict(pc).taken == t)
            ++correct;
        bp.update(pc, t, pc + 32);
    }
    EXPECT_GE(correct, 95);
}

TEST(BranchPredictor, LoopExitPatternLearned)
{
    BranchPredictor bp;
    std::uint64_t pc = 0x7000;
    // 7 taken then 1 not-taken, repeated (8-iteration loop).
    for (int rep = 0; rep < 60; ++rep)
        for (int i = 0; i < 8; ++i)
            bp.update(pc, i != 7, pc + 16);
    int correct = 0, total = 0;
    for (int rep = 0; rep < 10; ++rep) {
        for (int i = 0; i < 8; ++i) {
            bool actual = i != 7;
            if (bp.predict(pc).taken == actual)
                ++correct;
            bp.update(pc, actual, pc + 16);
            ++total;
        }
    }
    EXPECT_GE(correct * 100 / total, 85);
}

TEST(BranchPredictor, BtbMissUntilTrained)
{
    BranchPredictor bp;
    EXPECT_FALSE(bp.predict(0x8000).btbHit);
    bp.update(0x8000, true, 0x9000);
    auto p = bp.predict(0x8000);
    EXPECT_TRUE(p.btbHit);
    EXPECT_EQ(p.target, 0x9000u);
}

TEST(BranchPredictor, BtbNotInstalledOnNotTaken)
{
    BranchPredictor bp;
    bp.update(0xA000, false, 0);
    EXPECT_FALSE(bp.predict(0xA000).btbHit);
}

TEST(BranchPredictor, DistinctBranchesIndependent)
{
    BranchPredictor bp;
    for (int i = 0; i < 8; ++i) {
        bp.update(0x1000, true, 0x2000);
        bp.update(0x1400, false, 0);
    }
    EXPECT_TRUE(bp.predict(0x1000).taken);
    EXPECT_FALSE(bp.predict(0x1400).taken);
}
