/**
 * @file
 * Tests for the program IR and builder: id/pc assignment, layouts,
 * input-set knobs.
 */

#include <gtest/gtest.h>

#include "workload/program.hh"

using namespace mcd::workload;

namespace
{

Program
tinyProgram()
{
    ProgramBuilder b("tiny");
    InstructionMix m;
    m.set(InstrClass::Load, 0.2).branches(0.1, 0.02);
    MixId mx = b.mix(m);

    b.func("leaf");
    b.block(mx, 10);

    b.func("main");
    b.block(mx, 5);
    b.loop(3, 1.0, [&] {
        b.block(mx, 7);
        b.call("leaf");
    });
    return b.build("main");
}

} // namespace

TEST(ProgramBuilder, AssignsIdsAndEntry)
{
    Program p = tinyProgram();
    EXPECT_EQ(p.functions.size(), 2u);
    EXPECT_EQ(p.function(p.entry).name, "main");
    EXPECT_EQ(p.numLoops, 1);
    EXPECT_EQ(p.numCallSites, 1);
    EXPECT_EQ(p.blockLayouts.size(), 3u);  // leaf, main pre, loop body
}

TEST(ProgramBuilder, LayoutsMatchBlockCounts)
{
    Program p = tinyProgram();
    for (const auto &layout : p.blockLayouts)
        EXPECT_FALSE(layout.empty());
    // leaf's block has 10 static instructions.
    const auto &leaf = p.function(0);
    ASSERT_EQ(leaf.body.size(), 1u);
    ASSERT_EQ(leaf.body[0].kind, StmtKind::Block);
    EXPECT_EQ(p.blockLayouts[leaf.body[0].block.blockId].size(), 10u);
}

TEST(ProgramBuilder, PcsAreDisjointAndOrdered)
{
    Program p = tinyProgram();
    const auto &leaf = p.function(0);
    const auto &main_fn = p.function(1);
    EXPECT_LT(leaf.basePc, main_fn.basePc);
    EXPECT_LT(leaf.body[0].block.basePc, leaf.retPc);
    // Function base pcs are line aligned.
    EXPECT_EQ(leaf.basePc % 64, 0u);
    EXPECT_EQ(main_fn.basePc % 64, 0u);
}

TEST(ProgramBuilder, DeterministicLayoutForSameSeed)
{
    Program a = tinyProgram();
    Program b = tinyProgram();
    ASSERT_EQ(a.blockLayouts.size(), b.blockLayouts.size());
    for (size_t i = 0; i < a.blockLayouts.size(); ++i) {
        ASSERT_EQ(a.blockLayouts[i].size(), b.blockLayouts[i].size());
        for (size_t j = 0; j < a.blockLayouts[i].size(); ++j) {
            EXPECT_EQ(a.blockLayouts[i][j].cls,
                      b.blockLayouts[i][j].cls);
            EXPECT_EQ(a.blockLayouts[i][j].dep1,
                      b.blockLayouts[i][j].dep1);
        }
    }
}

TEST(ProgramBuilder, MixFractionsRoughlyHonored)
{
    ProgramBuilder b("mixcheck");
    InstructionMix m;
    m.set(InstrClass::Load, 0.3).set(InstrClass::FpAdd, 0.2);
    MixId mx = b.mix(m);
    b.func("main");
    b.block(mx, 4000);
    Program p = b.build("main");
    int loads = 0, fadds = 0;
    for (const auto &si : p.blockLayouts[0]) {
        loads += si.cls == InstrClass::Load;
        fadds += si.cls == InstrClass::FpAdd;
    }
    EXPECT_NEAR(loads / 4000.0, 0.3, 0.03);
    EXPECT_NEAR(fadds / 4000.0, 0.2, 0.03);
}

TEST(InputSet, KnobLookupAndDefault)
{
    InputSet s;
    s.with("alpha", 2.5).with("beta", 0.0);
    EXPECT_DOUBLE_EQ(s.knob("alpha", 1.0), 2.5);
    EXPECT_DOUBLE_EQ(s.knob("beta", 1.0), 0.0);
    EXPECT_DOUBLE_EQ(s.knob("gamma", 1.0), 1.0);
}

TEST(Program, FindFunctionByName)
{
    Program p = tinyProgram();
    EXPECT_NE(p.findFunction("leaf"), nullptr);
    EXPECT_EQ(p.findFunction("nope"), nullptr);
}

TEST(InstructionMix, SettersChain)
{
    InstructionMix m;
    m.set(InstrClass::Load, 0.25)
        .mem(1024, 0.5, 16)
        .branches(0.1, 0.2)
        .ilp(0.4, 12);
    EXPECT_DOUBLE_EQ(m.frac[static_cast<size_t>(InstrClass::Load)],
                     0.25);
    EXPECT_EQ(m.workingSetBytes, 1024u);
    EXPECT_EQ(m.strideBytes, 16u);
    EXPECT_DOUBLE_EQ(m.branchNoise, 0.2);
    EXPECT_EQ(m.maxDepDist, 12);
}
