/**
 * @file
 * Tests for the cycle-level MCD processor: progress, plausibility,
 * frequency-scaling effects, synchronization penalties, trace
 * well-formedness, schedules and interval hooks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/processor.hh"
#include "workload/suite.hh"

using namespace mcd;
using namespace mcd::sim;
using namespace mcd::workload;

namespace
{

Program
simpleProgram(double load_frac = 0.2, double fp_frac = 0.0)
{
    ProgramBuilder b("simple");
    InstructionMix m;
    m.set(InstrClass::Load, load_frac)
        .set(InstrClass::FpAdd, fp_frac)
        .branches(0.1, 0.02)
        .mem(16 * 1024, 0.9);
    MixId mx = b.mix(m);
    b.func("main");
    b.loop(400, 0.0, [&] { b.block(mx, 50); });
    return b.build("main");
}

RunResult
runSimple(const SimConfig &cfg, std::uint64_t n = 20000,
          double load_frac = 0.2, double fp_frac = 0.0)
{
    Program p = simpleProgram(load_frac, fp_frac);
    InputSet in;
    power::PowerConfig pcfg;
    Processor proc(cfg, pcfg, p, in);
    return proc.run(n);
}

} // namespace

TEST(Processor, RunsToCompletionWithPlausibleIpc)
{
    SimConfig cfg;
    RunResult r = runSimple(cfg);
    EXPECT_EQ(r.instrs, 20000u);
    EXPECT_GT(r.timePs, 0u);
    EXPECT_GT(r.chipEnergyNj, 0.0);
    EXPECT_GT(r.ipc, 0.3);
    EXPECT_LT(r.ipc, 4.0);
}

TEST(Processor, DeterministicAcrossRuns)
{
    SimConfig cfg;
    RunResult a = runSimple(cfg);
    RunResult b = runSimple(cfg);
    EXPECT_EQ(a.timePs, b.timePs);
    EXPECT_DOUBLE_EQ(a.chipEnergyNj, b.chipEnergyNj);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
}

TEST(Processor, SlowerDomainFrequencyIncreasesRuntime)
{
    SimConfig cfg;
    Program p = simpleProgram();
    InputSet in;
    power::PowerConfig pcfg;

    Processor fast(cfg, pcfg, p, in);
    RunResult rf = fast.run(20000);

    Processor slow(cfg, pcfg, p, in);
    slow.setInitialFreqs({1000.0, 250.0, 1000.0, 1000.0});
    RunResult rs = slow.run(20000);

    // Integer-heavy workload: quartering the integer domain clock
    // must slow execution substantially (well below 4x: the 4-wide
    // issue width has slack at IPC ~1.5).
    EXPECT_GT(rs.timePs, rf.timePs * 13 / 10);
}

TEST(Processor, IdleFpDomainScalingBarelyAffectsIntWorkload)
{
    SimConfig cfg;
    Program p = simpleProgram(0.2, 0.0);  // no FP at all
    InputSet in;
    power::PowerConfig pcfg;

    Processor fast(cfg, pcfg, p, in);
    RunResult rf = fast.run(20000);

    Processor slow(cfg, pcfg, p, in);
    slow.setInitialFreqs({1000.0, 1000.0, 250.0, 1000.0});
    RunResult rs = slow.run(20000);

    double slowdown =
        (static_cast<double>(rs.timePs) - static_cast<double>(rf.timePs)) /
        static_cast<double>(rf.timePs);
    EXPECT_LT(slowdown, 0.02);
    // ... and saves energy.
    EXPECT_LT(rs.chipEnergyNj, rf.chipEnergyNj);
}

TEST(Processor, LowVoltageRunSavesEnergy)
{
    SimConfig cfg;
    Program p = simpleProgram();
    InputSet in;
    power::PowerConfig pcfg;

    Processor fast(cfg, pcfg, p, in);
    RunResult rf = fast.run(20000);

    Processor slow(cfg, pcfg, p, in);
    slow.setInitialFreqs({500.0, 500.0, 500.0, 500.0});
    RunResult rs = slow.run(20000);

    EXPECT_GT(rs.timePs, rf.timePs);
    EXPECT_LT(rs.chipEnergyNj, rf.chipEnergyNj * 0.8);
}

TEST(Processor, SingleClockSlightlyFasterThanMcd)
{
    // The MCD synchronization penalty (paper: ~1.3% mean) must be
    // positive but small at equal frequencies.
    SimConfig mcd_cfg;
    SimConfig sc_cfg;
    sc_cfg.singleClock = true;

    RunResult mcd_r = runSimple(mcd_cfg, 30000);
    RunResult sc_r = runSimple(sc_cfg, 30000);

    double penalty =
        (static_cast<double>(mcd_r.timePs) -
         static_cast<double>(sc_r.timePs)) /
        static_cast<double>(sc_r.timePs);
    // Our substrate is more latency-sensitive than the authors'
    // (paper: 1.3% mean, 3.6% max; see docs/ARCHITECTURE.md,
    // "Synchronization window"), but the penalty must stay positive
    // and moderate.
    EXPECT_GT(penalty, 0.0);
    EXPECT_LT(penalty, 0.15);
}

TEST(Processor, MemoryBoundWorkloadMissesInCaches)
{
    SimConfig cfg;
    ProgramBuilder b("membound");
    InstructionMix m;
    m.set(InstrClass::Load, 0.35).mem(16 * 1024 * 1024, 0.05);
    m.branches(0.05, 0.02);
    MixId mx = b.mix(m);
    b.func("main");
    b.loop(200, 0.0, [&] { b.block(mx, 100); });
    Program p = b.build("main");
    InputSet in;
    power::PowerConfig pcfg;
    Processor proc(cfg, pcfg, p, in);
    RunResult r = proc.run(15000);
    EXPECT_GT(r.l1dMisses * 10, r.l1dAccesses)
        << "expected >10% miss rate on 16MB random working set";
    EXPECT_GT(r.dramAccesses, 100u);
    EXPECT_LT(r.ipc, 1.0);
}

TEST(Processor, BranchyCodeHasMispredicts)
{
    SimConfig cfg;
    ProgramBuilder b("branchy");
    InstructionMix m;
    m.branches(0.3, 0.35);
    MixId mx = b.mix(m);
    b.func("main");
    b.loop(100, 0.0, [&] { b.block(mx, 120); });
    Program p = b.build("main");
    InputSet in;
    power::PowerConfig pcfg;
    Processor proc(cfg, pcfg, p, in);
    RunResult r = proc.run(10000);
    EXPECT_GT(r.branches, 1000u);
    EXPECT_GT(r.mispredicts, r.branches / 50);
    EXPECT_LT(r.mispredicts, r.branches / 2);
}

namespace
{

class CollectingSink : public TraceSink
{
  public:
    void onInstr(const InstrTiming &t) override { items.push_back(t); }
    std::vector<InstrTiming> items;
};

} // namespace

TEST(Processor, TraceIsWellFormed)
{
    SimConfig cfg;
    Program p = simpleProgram(0.25, 0.1);
    InputSet in;
    power::PowerConfig pcfg;
    Processor proc(cfg, pcfg, p, in);
    CollectingSink sink;
    proc.setTraceSink(&sink);
    RunResult r = proc.run(8000);
    ASSERT_EQ(sink.items.size(), r.instrs);

    std::uint64_t prev_seq = 0;
    Tick prev_commit = 0;
    for (const auto &t : sink.items) {
        // Committed in sequence order (in-order retirement).
        EXPECT_EQ(t.seq, prev_seq + 1);
        prev_seq = t.seq;
        EXPECT_GE(t.commit, prev_commit);
        prev_commit = t.commit;
        // Stage timestamps are monotone within the instruction.
        EXPECT_LE(t.fetch, t.dispatch);
        EXPECT_LE(t.dispatch, t.issue);
        EXPECT_LE(t.issue, t.execDone);
        EXPECT_LE(t.execDone, t.commit);
        if (t.cls == InstrClass::Load) {
            EXPECT_LE(t.memStart, t.memDone);
            EXPECT_LE(t.memDone, t.commit);
        }
        // Dependences reference older instructions only.
        EXPECT_LT(t.dep1, t.seq);
        EXPECT_LT(t.dep2, t.seq);
    }
}

TEST(Processor, ScheduleAppliesFrequencies)
{
    SimConfig cfg;
    Program p = simpleProgram();
    InputSet in;
    power::PowerConfig pcfg;
    Processor proc(cfg, pcfg, p, in);
    std::vector<SchedulePoint> sched;
    SchedulePoint pt;
    pt.atInstr = 1;
    pt.freqs = {250.0, 250.0, 250.0, 250.0};
    sched.push_back(pt);
    proc.setSchedule(sched);
    RunResult r = proc.run(20000);
    EXPECT_EQ(r.reconfigs, 1u);
    // Average frequencies must have moved well below max.
    EXPECT_LT(r.avgFreq[0], 950.0);
}

namespace
{

class CountingHook : public IntervalHook
{
  public:
    void onInterval(const IntervalStats &s, DvfsControl &ctl) override
    {
        ++calls;
        lastOcc = s.queueOcc;
        instrs += s.instrs;
        ctl.setTarget(Domain::FloatingPoint, 250.0);
    }
    int calls = 0;
    std::uint64_t instrs = 0;
    std::array<double, NUM_SCALED_DOMAINS> lastOcc{};
};

} // namespace

TEST(Processor, IntervalHookFiresAndControls)
{
    SimConfig cfg;
    Program p = simpleProgram();
    InputSet in;
    power::PowerConfig pcfg;
    Processor proc(cfg, pcfg, p, in);
    CountingHook hook;
    proc.setIntervalHook(&hook, 2000);
    RunResult r = proc.run(20000);
    EXPECT_GE(hook.calls, 9);
    EXPECT_LE(hook.calls, 10);
    EXPECT_EQ(hook.instrs,
              static_cast<std::uint64_t>(hook.calls) * 2000u);
    // The hook drove the FP domain down; avg freq reflects it.
    EXPECT_LT(r.avgFreq[static_cast<size_t>(Domain::FloatingPoint)],
              990.0);
}

TEST(Processor, SuiteBenchmarkRunsEndToEnd)
{
    SimConfig cfg;
    Benchmark bm = makeBenchmark("gsm_decode");
    power::PowerConfig pcfg;
    Processor proc(cfg, pcfg, bm.program, bm.train);
    RunResult r = proc.run(50000);
    EXPECT_EQ(r.instrs, 50000u);
    EXPECT_GT(r.ipc, 0.2);
}
