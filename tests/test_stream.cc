/**
 * @file
 * Tests for the execution streamer: determinism, marker balance,
 * trip-count scaling, guarded calls, argument profiles.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "workload/stream.hh"

using namespace mcd::workload;

namespace
{

Program
nestedProgram()
{
    ProgramBuilder b("nested");
    InstructionMix m;
    m.set(InstrClass::Load, 0.2).branches(0.1, 0.05);
    MixId mx = b.mix(m);

    b.func("callee");
    b.block(mx, 6);

    b.func("main");
    b.loop(4, 1.0, [&] {
        b.block(mx, 3);
        b.loop(2, 0.0, [&] { b.call("callee"); });
    });
    return b.build("main");
}

struct Collected
{
    std::vector<StreamItem> items;
    std::uint64_t instrs = 0;
};

Collected
collect(const Program &p, const InputSet &in,
        std::uint64_t cap = 1'000'000)
{
    Stream s(p, in);
    Collected c;
    StreamItem item;
    while (s.next(item) && c.instrs < cap) {
        c.items.push_back(item);
        if (item.kind == StreamItem::Kind::Instr)
            ++c.instrs;
    }
    return c;
}

} // namespace

TEST(Stream, DeterministicAcrossInstances)
{
    Program p = nestedProgram();
    InputSet in;
    in.seed = 5;
    auto a = collect(p, in);
    auto b = collect(p, in);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t i = 0; i < a.items.size(); ++i) {
        EXPECT_EQ(a.items[i].kind, b.items[i].kind);
        if (a.items[i].kind == StreamItem::Kind::Instr) {
            EXPECT_EQ(a.items[i].instr.pc, b.items[i].instr.pc);
            EXPECT_EQ(a.items[i].instr.addr, b.items[i].instr.addr);
            EXPECT_EQ(a.items[i].instr.taken, b.items[i].instr.taken);
        }
    }
}

TEST(Stream, MarkersBalance)
{
    Program p = nestedProgram();
    InputSet in;
    auto c = collect(p, in);
    int func_depth = 0, loop_depth = 0;
    int max_func = 0;
    for (const auto &item : c.items) {
        if (item.kind != StreamItem::Kind::Marker)
            continue;
        switch (item.marker.kind) {
          case MarkerKind::FuncEnter:
            ++func_depth;
            max_func = std::max(max_func, func_depth);
            break;
          case MarkerKind::FuncExit:
            --func_depth;
            break;
          case MarkerKind::LoopEnter:
            ++loop_depth;
            break;
          case MarkerKind::LoopExit:
            --loop_depth;
            break;
          default:
            break;
        }
        ASSERT_GE(func_depth, 0);
        ASSERT_GE(loop_depth, 0);
    }
    EXPECT_EQ(func_depth, 0);
    EXPECT_EQ(loop_depth, 0);
    EXPECT_EQ(max_func, 2);  // main -> callee
}

TEST(Stream, CallSitePrecedesFuncEnter)
{
    Program p = nestedProgram();
    InputSet in;
    auto c = collect(p, in);
    for (size_t i = 0; i < c.items.size(); ++i) {
        const auto &item = c.items[i];
        if (item.kind == StreamItem::Kind::Marker &&
            item.marker.kind == MarkerKind::CallSite) {
            // Next items: call branch instr, then FuncEnter.
            ASSERT_LT(i + 2, c.items.size());
            EXPECT_EQ(c.items[i + 1].kind, StreamItem::Kind::Instr);
            EXPECT_EQ(c.items[i + 2].kind, StreamItem::Kind::Marker);
            EXPECT_EQ(c.items[i + 2].marker.kind, MarkerKind::FuncEnter);
            EXPECT_EQ(c.items[i + 2].marker.site, item.marker.site);
        }
    }
}

TEST(Stream, ScaleMultipliesTripCounts)
{
    Program p = nestedProgram();
    InputSet one, three;
    one.scale = 1.0;
    three.scale = 3.0;
    auto a = collect(p, one);
    auto b = collect(p, three);
    // Outer loop scales with input (scaleExp 1), inner does not.
    EXPECT_GT(b.instrs, 2 * a.instrs);
    EXPECT_LT(b.instrs, 4 * a.instrs);
}

TEST(Stream, GuardedCallRespondsToKnob)
{
    ProgramBuilder b("guarded");
    InstructionMix m;
    MixId mx = b.mix(m);
    b.func("rare");
    b.block(mx, 10);
    b.func("main");
    b.loop(50, 0.0, [&] { b.call("rare", 0, 1.0, "rare_prob"); });
    Program p = b.build("main");

    InputSet never, always;
    never.with("rare_prob", 0.0);
    always.with("rare_prob", 1.0);

    auto cn = collect(p, never);
    auto ca = collect(p, always);
    int enters_never = 0, enters_always = 0;
    for (const auto &item : cn.items)
        if (item.kind == StreamItem::Kind::Marker &&
            item.marker.kind == MarkerKind::FuncEnter &&
            item.marker.func == 0)
            ++enters_never;
    for (const auto &item : ca.items)
        if (item.kind == StreamItem::Kind::Marker &&
            item.marker.kind == MarkerKind::FuncEnter &&
            item.marker.func == 0)
            ++enters_always;
    EXPECT_EQ(enters_never, 0);
    EXPECT_EQ(enters_always, 50);
}

TEST(Stream, ArgProfileScalesTrips)
{
    ProgramBuilder b("args");
    InstructionMix m;
    MixId mx = b.mix(m);
    b.func("kernel");
    b.argProfiles({ArgProfile{1.0, 1.0, 0.0, 1.0},
                   ArgProfile{1.0, 4.0, 0.0, 1.0}});
    b.loop(10, 0.0, [&] { b.block(mx, 5); });
    b.func("main");
    b.call("kernel", 0);
    b.call("kernel", 1);
    Program p = b.build("main");

    InputSet in;
    auto c = collect(p, in);
    // Count instructions between the two kernel invocations.
    std::vector<std::uint64_t> per_call;
    std::uint64_t cur = 0;
    bool inside = false;
    for (const auto &item : c.items) {
        if (item.kind == StreamItem::Kind::Marker) {
            if (item.marker.kind == MarkerKind::FuncEnter &&
                item.marker.func == 0) {
                inside = true;
                cur = 0;
            } else if (item.marker.kind == MarkerKind::FuncExit &&
                       item.marker.func == 0) {
                inside = false;
                per_call.push_back(cur);
            }
        } else if (inside) {
            ++cur;
        }
    }
    ASSERT_EQ(per_call.size(), 2u);
    // Second call has ~4x the loop trips.
    EXPECT_GT(per_call[1], 3 * per_call[0]);
}

TEST(Stream, BackEdgeBranchTakenUntilLastIteration)
{
    ProgramBuilder b("backedge");
    InstructionMix m;
    MixId mx = b.mix(m);
    b.func("main");
    b.loop(5, 0.0, [&] { b.block(mx, 2); });
    Program p = b.build("main");
    const auto &loop_stmt = p.function(p.entry).body[0].loop;

    InputSet in;
    auto c = collect(p, in);
    std::vector<bool> outcomes;
    for (const auto &item : c.items)
        if (item.kind == StreamItem::Kind::Instr &&
            item.instr.pc == loop_stmt.branchPc)
            outcomes.push_back(item.instr.taken);
    ASSERT_EQ(outcomes.size(), 5u);
    for (size_t i = 0; i + 1 < outcomes.size(); ++i)
        EXPECT_TRUE(outcomes[i]);
    EXPECT_FALSE(outcomes.back());
}
