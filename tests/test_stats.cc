/**
 * @file
 * Tests for summaries and the paper's headline metrics.
 */

#include <gtest/gtest.h>

#include "util/stats.hh"

using mcd::computeMetrics;
using mcd::Summary;

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Summary, TracksMinMaxMean)
{
    Summary s;
    s.add(3.0);
    s.add(-1.0);
    s.add(7.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Metrics, BaselineIsZero)
{
    auto m = computeMetrics(100.0, 50.0, 100.0, 50.0);
    EXPECT_DOUBLE_EQ(m.slowdownPct, 0.0);
    EXPECT_DOUBLE_EQ(m.energySavingsPct, 0.0);
    EXPECT_DOUBLE_EQ(m.energyDelayImprovementPct, 0.0);
}

TEST(Metrics, PaperConventions)
{
    // 10% slower, 30% less energy.
    auto m = computeMetrics(110.0, 35.0, 100.0, 50.0);
    EXPECT_NEAR(m.slowdownPct, 10.0, 1e-9);
    EXPECT_NEAR(m.energySavingsPct, 30.0, 1e-9);
    // ED improvement = 1 - (110*35)/(100*50) = 1 - 0.77 = 23%.
    EXPECT_NEAR(m.energyDelayImprovementPct, 23.0, 1e-9);
}

TEST(Metrics, NegativeImprovementPossible)
{
    auto m = computeMetrics(130.0, 45.0, 100.0, 50.0);
    EXPECT_LT(m.energyDelayImprovementPct, 0.0);
}
