/**
 * @file
 * Tests for the tiled many-core chip (src/chip/): the `multi:`
 * co-schedule grammar, byte-identity of a one-tile chip with the
 * bare single-core simulator (fast-forward on and off, with and
 * without a per-tile controller), same-seed determinism of
 * multi-tile co-schedules down to the per-domain edge schedule,
 * shared-uncore contention, the chip-level coordinator, the
 * watchdog at chip scope, and chip-cell memoization in the
 * experiment runner.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chip/chip.hh"
#include "chip/multi.hh"
#include "control/online.hh"
#include "control/policy.hh"
#include "exp/experiment.hh"
#include "sim/processor.hh"
#include "workload/registry.hh"
#include "workload/spec.hh"
#include "workload/suite.hh"

using namespace mcd;
using namespace mcd::sim;

namespace
{

constexpr std::uint64_t WINDOW = 20'000;

/** A short memory-lean generated workload spec. */
const char *GEN_A = "gen:phases=2,mem=0.1,seed=3";
/** A short memory-heavy generated workload spec. */
const char *GEN_B = "gen:phases=2,mem=0.6,seed=9";

/** Every field of two RunResults must match bit-for-bit. */
void
expectIdenticalResults(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.timePs, b.timePs);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.feCycles, b.feCycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.chipEnergyNj, b.chipEnergyNj);
    EXPECT_EQ(a.dramEnergyNj, b.dramEnergyNj);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.l1dAccesses, b.l1dAccesses);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.reconfigs, b.reconfigs);
    EXPECT_EQ(a.overheadCycles, b.overheadCycles);
    EXPECT_EQ(a.ffEdges, b.ffEdges);
    for (Domain d : scaledDomains()) {
        auto i = static_cast<std::size_t>(d);
        EXPECT_EQ(a.avgFreq[i], b.avgFreq[i]);
        EXPECT_EQ(a.domainEnergyNj[i], b.domainEnergyNj[i]);
    }
}

} // namespace

// ------------------------------------------------------------------ //
// multi: co-schedule grammar                                         //
// ------------------------------------------------------------------ //

TEST(MultiSpec, PlainSpecReplicatesAcrossTiles)
{
    auto v = chip::parseMultiSpec("gsm_decode", 3);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "gsm_decode");
    EXPECT_EQ(v[1], "gsm_decode");
    EXPECT_EQ(v[2], "gsm_decode");
    EXPECT_EQ(chip::canonicalMultiSpec("gsm_decode", 2),
              "multi:t0=gsm_decode,t1=gsm_decode");
}

TEST(MultiSpec, EntriesMayContainColonsAndCommas)
{
    auto v = chip::parseMultiSpec(
        "multi:t0=gsm_decode,t1=gen:phases=4,mem=0.4,seed=7");
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "gsm_decode");
    // The nested gen: spec canonicalizes parameter-complete.
    EXPECT_EQ(v[1],
              workload::canonicalWorkloadSpec(
                  "gen:phases=4,mem=0.4,seed=7"));
}

TEST(MultiSpec, TileOrderIsCanonicalized)
{
    std::string canon = chip::canonicalMultiSpec(
        "multi:t1=gsm_encode,t0=gsm_decode");
    EXPECT_EQ(canon, "multi:t0=gsm_decode,t1=gsm_encode");
    // Canonicalization is idempotent.
    EXPECT_EQ(chip::canonicalMultiSpec(canon), canon);
}

TEST(MultiSpec, RejectsMalformedCoSchedules)
{
    using workload::SpecError;
    EXPECT_THROW(chip::parseMultiSpec("multi:"), SpecError);
    EXPECT_THROW(chip::parseMultiSpec("multi:gsm_decode"), SpecError);
    EXPECT_THROW(chip::parseMultiSpec("multi:t0="), SpecError);
    // Duplicate and non-contiguous tile indices.
    EXPECT_THROW(
        chip::parseMultiSpec("multi:t0=gsm_decode,t0=gsm_encode"),
        SpecError);
    EXPECT_THROW(
        chip::parseMultiSpec("multi:t0=gsm_decode,t2=gsm_encode"),
        SpecError);
    // Tile-count mismatch and unknown sub-workload.
    EXPECT_THROW(chip::parseMultiSpec("multi:t0=gsm_decode", 2),
                 SpecError);
    EXPECT_THROW(chip::parseMultiSpec("multi:t0=no_such_workload"),
                 SpecError);
}

// ------------------------------------------------------------------ //
// N=1 equivalence with the single-core simulator                     //
// ------------------------------------------------------------------ //

/** Param: fast-forward mode. */
using ChipEquivalence = ::testing::TestWithParam<bool>;

TEST_P(ChipEquivalence, OneTileChipIsByteIdenticalToProcessor)
{
    SimConfig cfg;
    cfg.fastForward = GetParam();
    power::PowerConfig pcfg;

    workload::Benchmark bm = workload::makeBenchmark("gsm_decode");
    Processor proc(cfg, pcfg, bm.program, bm.ref);
    RunResult single = proc.run(WINDOW);

    chip::ChipConfig ccfg;
    chip::Chip c(ccfg, cfg, pcfg, {"gsm_decode"});
    chip::ChipResult r = c.run(WINDOW);

    ASSERT_EQ(r.tiles.size(), 1u);
    expectIdenticalResults(single, r.tiles[0]);
    // One tile has no shared uncore: no fabric energy, no queueing.
    EXPECT_EQ(r.uncoreEnergyNj, 0.0);
    EXPECT_EQ(r.uncore.l2Grants, 0u);
    EXPECT_EQ(r.timePs, single.timePs ? r.timePs : 0u);
}

TEST_P(ChipEquivalence, OneTileChipMatchesUnderOnlineController)
{
    // The fig04 path: the on-line attack/decay controller drives the
    // domains.  A one-tile chip with the same controller must follow
    // the identical trajectory.
    SimConfig cfg;
    cfg.fastForward = GetParam();
    power::PowerConfig pcfg;
    control::OnlineConfig ocfg;
    ocfg.intIqSize = cfg.intIqSize;
    ocfg.fpIqSize = cfg.fpIqSize;
    ocfg.lsqSize = cfg.lsqSize;
    ocfg.robSize = cfg.robSize;
    ocfg.aggressiveness = 2.0;

    // The memory-heavy generated workload keeps some domains idle
    // enough that the controller actually moves frequencies.
    std::string bench = workload::canonicalWorkloadSpec(GEN_B);
    workload::Benchmark bm = workload::makeBenchmark(bench);
    Processor proc(cfg, pcfg, bm.program, bm.ref);
    control::AttackDecayController single_ctl(ocfg, cfg);
    proc.setIntervalHook(&single_ctl, ocfg.intervalInstrs);
    RunResult single = proc.run(WINDOW);

    chip::ChipConfig ccfg;
    chip::Chip c(ccfg, cfg, pcfg, {bench});
    control::AttackDecayController chip_ctl(ocfg, cfg);
    c.setTileHook(0, &chip_ctl, ocfg.intervalInstrs);
    chip::ChipResult r = c.run(WINDOW);

    ASSERT_EQ(r.tiles.size(), 1u);
    // The controller really moved frequencies (a trajectory of
    // all-max would make this equivalence vacuous)...
    EXPECT_LT(single.avgFreq[domainIndex(Domain::Integer)],
              cfg.maxMhz);
    // ...and the chip tile followed the identical one.
    expectIdenticalResults(single, r.tiles[0]);
}

INSTANTIATE_TEST_SUITE_P(Modes, ChipEquivalence,
                         ::testing::Values(false, true));

// ------------------------------------------------------------------ //
// Multi-tile determinism and contention                              //
// ------------------------------------------------------------------ //

TEST(Chip, SameSeedCoScheduleIsBitReproducible)
{
    SimConfig cfg;
    cfg.fastForward = true;
    power::PowerConfig pcfg;
    std::string spec = std::string("multi:t0=gsm_decode,t1=") +
                       GEN_A + ",t2=" + GEN_B + ",t3=gsm_encode";
    auto tiles = chip::parseMultiSpec(spec);
    ASSERT_EQ(tiles.size(), 4u);

    auto once = [&] {
        chip::Chip c(chip::ChipConfig{}, cfg, pcfg, tiles);
        return c.run(WINDOW);
    };
    chip::ChipResult a = once();
    chip::ChipResult b = once();

    ASSERT_EQ(a.tiles.size(), b.tiles.size());
    for (std::size_t k = 0; k < a.tiles.size(); ++k)
        expectIdenticalResults(a.tiles[k], b.tiles[k]);
    EXPECT_EQ(a.timePs, b.timePs);
    EXPECT_EQ(a.uncoreEnergyNj, b.uncoreEnergyNj);
    EXPECT_EQ(a.uncore.l2Grants, b.uncore.l2Grants);
    EXPECT_EQ(a.uncore.l2QueuedPs, b.uncore.l2QueuedPs);
    EXPECT_EQ(a.uncore.dramAccesses, b.uncore.dramAccesses);
    EXPECT_EQ(a.uncore.dramQueuedPs, b.uncore.dramQueuedPs);
    EXPECT_EQ(a.tileDramAccesses, b.tileDramAccesses);

    // Down to the edge schedule: every tile consumed the same number
    // of edges per domain in both runs.
    chip::Chip c1(chip::ChipConfig{}, cfg, pcfg, tiles);
    chip::Chip c2(chip::ChipConfig{}, cfg, pcfg, tiles);
    c1.run(WINDOW);
    c2.run(WINDOW);
    for (int k = 0; k < 4; ++k)
        for (Domain d : scaledDomains())
            EXPECT_EQ(c1.tile(k).domainEdges(d),
                      c2.tile(k).domainEdges(d))
                << "tile " << k;
}

TEST(Chip, DistinctTilesSeeDistinctJitterStreams)
{
    // Same workload on two tiles: the derived per-tile jitter seeds
    // must decorrelate them (identical streams would make the
    // co-schedule an unrealistic lockstep march).
    SimConfig cfg;
    cfg.fastForward = true;
    power::PowerConfig pcfg;
    chip::Chip c(chip::ChipConfig{}, cfg, pcfg,
                 {"gsm_decode", "gsm_decode"});
    chip::ChipResult r = c.run(WINDOW);
    ASSERT_EQ(r.tiles.size(), 2u);
    EXPECT_EQ(r.tiles[0].instrs, r.tiles[1].instrs);
    EXPECT_NE(r.tiles[0].timePs, r.tiles[1].timePs);
}

TEST(Chip, SharedUncoreMakesCoScheduledTilesInterfere)
{
    SimConfig cfg;
    cfg.fastForward = true;
    power::PowerConfig pcfg;

    workload::Benchmark bm = workload::makeBenchmark(
        workload::canonicalWorkloadSpec(GEN_B));
    Processor proc(cfg, pcfg, bm.program, bm.ref);
    RunResult alone = proc.run(WINDOW);

    chip::Chip c(chip::ChipConfig{}, cfg, pcfg, {GEN_B, GEN_B, GEN_B,
                                                 GEN_B});
    chip::ChipResult r = c.run(WINDOW);

    // Tile 0 runs the exact same program with the exact same seed as
    // the lone core, but now queues behind three memory-heavy
    // neighbours: it can only be slower, and the uncore must have
    // seen queueing and burned fabric energy.
    EXPECT_GE(r.tiles[0].timePs, alone.timePs);
    EXPECT_GT(r.uncore.l2Grants, 0u);
    EXPECT_GT(r.uncore.dramAccesses, 0u);
    EXPECT_GT(r.uncoreEnergyNj, 0.0);
    std::uint64_t dram_sum = 0;
    for (std::uint64_t n : r.tileDramAccesses)
        dram_sum += n;
    EXPECT_EQ(dram_sum, r.uncore.dramAccesses);
}

// ------------------------------------------------------------------ //
// Coordinator                                                        //
// ------------------------------------------------------------------ //

TEST(Chip, CoordinatorMovesTheUncoreFrequency)
{
    SimConfig cfg;
    cfg.fastForward = true;
    power::PowerConfig pcfg;
    chip::ChipConfig ccfg;
    ccfg.l2PortCycles = 8;        // force visible contention
    ccfg.coordIntervalPs = 100'000;

    // An always-idle-looking threshold pair drives the uncore down.
    chip::CoordConfig coord =
        chip::parseCoordSpec("chip-coord:hi=900,lo=800");
    EXPECT_TRUE(coord.enabled);
    EXPECT_EQ(coord.canonSpec,
              "chip-coord:hi=900.000,lo=800.000,step=0.100");

    chip::Chip c(ccfg, cfg, pcfg, {GEN_B, GEN_B});
    c.setCoordinator(coord);
    chip::ChipResult r = c.run(WINDOW);
    EXPECT_GT(r.uncoreReconfigs, 0u);
    EXPECT_LT(r.uncoreAvgMhz, ccfg.uncoreMaxMhz);

    // Without a coordinator the uncore pins at max.
    chip::Chip c2(ccfg, cfg, pcfg, {GEN_B, GEN_B});
    chip::ChipResult r2 = c2.run(WINDOW);
    EXPECT_EQ(r2.uncoreReconfigs, 0u);
    EXPECT_EQ(r2.uncoreAvgMhz, ccfg.uncoreMaxMhz);
}

TEST(Chip, CoordSpecValidation)
{
    using workload::SpecError;
    EXPECT_FALSE(chip::parseCoordSpec("").enabled);
    EXPECT_THROW(chip::parseCoordSpec("online"), SpecError);
    EXPECT_THROW(chip::parseCoordSpec("chip-coord:bogus=1"),
                 SpecError);
    EXPECT_THROW(chip::parseCoordSpec("chip-coord:hi=0.1,lo=0.2"),
                 SpecError);
}

TEST(ChipDeathTest, ChipCoordPolicyRefusesSingleCoreRuns)
{
    control::PolicySpec spec =
        control::PolicySpec::of("chip-coord");
    std::string err;
    ASSERT_TRUE(control::PolicyRegistry::instance().canonicalize(
        spec, err))
        << err;
    const control::Policy *p =
        control::PolicyRegistry::instance().find("chip-coord");
    ASSERT_NE(p, nullptr);
    control::PolicyContext ctx;
    EXPECT_DEATH(p->run("gsm_decode", spec, ctx),
                 "cannot run the single-core benchmark");
}

// ------------------------------------------------------------------ //
// Watchdog at chip scope                                             //
// ------------------------------------------------------------------ //

TEST(ChipDeathTest, WatchdogPanicsWithoutCommitProgress)
{
    SimConfig cfg;
    cfg.watchdogPs = 10;  // first edge arrives after ~1000 ps
    power::PowerConfig pcfg;
    chip::Chip c(chip::ChipConfig{}, cfg, pcfg,
                 {"gsm_decode", "gsm_encode"});
    EXPECT_DEATH(c.run(1000), "no commit progress");
}

// ------------------------------------------------------------------ //
// Chip cells in the experiment runner                                //
// ------------------------------------------------------------------ //

TEST(ChipRunner, ChipCellsMemoizePerRow)
{
    exp::ExpConfig cfg;
    cfg.sim.fastForward = true;
    cfg.productionWindow = WINDOW;
    exp::Runner runner(cfg);

    exp::ChipCell cell;
    cell.workload = "gsm_decode";
    cell.tiles = 2;

    auto keys = runner.chipCacheKeys(cell);
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_NE(keys[0].find("tile=0"), std::string::npos);
    EXPECT_NE(keys[1].find("tile=1"), std::string::npos);
    EXPECT_NE(keys[2].find("tile=u"), std::string::npos);
    EXPECT_NE(keys[0].find("coord=off"), std::string::npos);
    EXPECT_NE(
        keys[0].find("multi:t0=gsm_decode,t1=gsm_decode"),
        std::string::npos);

    auto first = runner.runChip(cell);
    ASSERT_EQ(first.size(), 3u);
    std::uint64_t misses = runner.memoMisses();
    EXPECT_EQ(misses, 3u);

    // Second request: every row is served from the memo.
    auto second = runner.runChip(cell);
    EXPECT_EQ(runner.memoMisses(), misses);
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].timePs, second[i].timePs);
        EXPECT_EQ(first[i].energyNj, second[i].energyNj);
    }
    EXPECT_GT(first[0].timePs, 0.0);
    EXPECT_GT(first[2].energyNj, 0.0);  // uncore fabric row
}

TEST(ChipRunner, RejectsNonTileCapablePolicies)
{
    exp::Runner runner;
    exp::ChipCell cell;
    cell.workload = "gsm_decode";
    cell.tiles = 2;
    cell.tilePolicy = control::PolicySpec::of("profile");
    try {
        runner.runChip(cell);
        FAIL() << "profile must not drive chip tiles";
    } catch (const workload::SpecError &e) {
        // The message names the tile-capable alternatives.
        EXPECT_NE(std::string(e.what()).find("baseline"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("online"),
                  std::string::npos);
    }
}

TEST(ChipRunner, OneTileChipCellMatchesSingleCoreCell)
{
    exp::ExpConfig cfg;
    cfg.sim.fastForward = true;
    cfg.productionWindow = WINDOW;
    exp::Runner runner(cfg);

    exp::Outcome single =
        runner.run("gsm_decode", control::PolicySpec::of("baseline"));

    exp::ChipCell cell;
    cell.workload = "gsm_decode";
    cell.tiles = 1;
    auto rows = runner.runChip(cell);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].timePs, single.timePs);
    EXPECT_EQ(rows[0].energyNj, single.energyNj);
    EXPECT_EQ(rows[1].energyNj, 0.0);  // no uncore on one tile
}

// ------------------------------------------------------------------ //
// Registry listings are canonically sorted (CLI smoke stability)     //
// ------------------------------------------------------------------ //

TEST(Registries, ListingsAreNameSorted)
{
    auto policies = control::PolicyRegistry::instance().list();
    ASSERT_GT(policies.size(), 1u);
    for (std::size_t i = 1; i < policies.size(); ++i)
        EXPECT_LT(std::string(policies[i - 1]->name()),
                  std::string(policies[i]->name()));

    auto workloads = workload::WorkloadRegistry::instance().list();
    ASSERT_GT(workloads.size(), 1u);
    for (std::size_t i = 1; i < workloads.size(); ++i)
        EXPECT_LT(std::string(workloads[i - 1]->name()),
                  std::string(workloads[i]->name()));
}
