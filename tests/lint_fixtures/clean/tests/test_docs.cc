// Fixture test_docs.cc for mcd_lint's `lint-docs` rule: pins the
// rule ids, as the real tests/test_docs.cc does.
//
// fingerprint-complete, cache-version-pin, determinism,
// locale-safety, registration, lint-docs
