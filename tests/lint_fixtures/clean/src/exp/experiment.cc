// Miniature experiment.cc for mcd_lint's fixture tests: holds the
// CACHE_VERSION constant and the configFingerprint definition the
// fingerprint-complete / cache-version-pin rules parse.

#include "exp/experiment.hh"

#include "util/text.hh"

namespace mcd::exp
{

namespace
{

constexpr int CACHE_VERSION = 5;

} // namespace

std::uint64_t
configFingerprint(const ExpConfig &cfg)
{
    struct Fnv
    {
        std::uint64_t h = 1469598103934665603ULL;
        void u64(std::uint64_t v) { h = (h ^ v) * 1099511628211ULL; }
        void i64(long long v) { u64(static_cast<std::uint64_t>(v)); }
        void f64(double v) { u64(static_cast<std::uint64_t>(v)); }
    };

    Fnv f;
    const sim::SimConfig &s = cfg.sim;
    f.i64(s.fetchWidth);
    f.f64(s.maxMhz);
    f.u64(s.jitterSeed);

    const sim::SamplingConfig &sp = s.sampling;
    f.u64(sp.intervalInstrs);
    f.u64(sp.sampleInstrs);
    f.f64(sp.ciBiasPct);

    const power::PowerConfig &p = cfg.power;
    for (double v : p.clockPj)
        f.f64(v);
    f.f64(p.vMax);

    f.u64(cfg.profileMaxInstrs);

    const chip::ChipConfig &ch = cfg.chip;
    f.i64(ch.l2PortCycles);
    f.f64(ch.uncoreMaxMhz);
    f.u64(ch.coordIntervalPs);

    const control::LearnedConfig &ln = cfg.learned;
    f.u64(ln.trainWindow);
    f.u64(ln.trainPasses);
    return f.h ^ static_cast<std::uint64_t>(CACHE_VERSION);
}

std::string
outcomeToLine(const std::string &key, double timePs, double energyNj)
{
    std::string line = key;
    line += ',';
    line += util::fmtDouble17(timePs);
    line += ',';
    line += util::fmtDouble17(energyNj);
    return line;
}

} // namespace mcd::exp
