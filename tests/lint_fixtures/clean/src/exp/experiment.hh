// Miniature ExpConfig for mcd_lint's fixture tests.

#ifndef FIX_EXP_EXPERIMENT_HH
#define FIX_EXP_EXPERIMENT_HH

#include <cstdint>
#include <string>

#include "chip/config.hh"
#include "control/learned.hh"
#include "power/power.hh"
#include "sim/config.hh"

namespace mcd::exp
{

struct ExpConfig
{
    sim::SimConfig sim;
    power::PowerConfig power;
    chip::ChipConfig chip;
    control::LearnedConfig learned;
    std::uint64_t profileMaxInstrs = 4000;

    // mcd-lint: allow(fingerprint-complete): spelled into the
    // cache-key text by the policies' contextKey() fragments.
    std::uint64_t productionWindow = 150;

    // mcd-lint: allow(fingerprint-complete): names where outcomes
    // are stored, never what they are.
    std::string cacheFile;
};

std::uint64_t configFingerprint(const ExpConfig &cfg);

} // namespace mcd::exp

#endif
