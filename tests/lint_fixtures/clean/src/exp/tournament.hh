// Miniature TournamentConfig for mcd_lint's fixture tests: every
// field only selects which {policy, workload} cells run — each
// cell's outcome keys on its own canonical specs — so every field
// carries an allow annotation instead of a hash call.

#ifndef FIX_EXP_TOURNAMENT_HH
#define FIX_EXP_TOURNAMENT_HH

#include <string>
#include <vector>

namespace mcd::exp
{

struct TournamentConfig
{
    // mcd-lint: allow(fingerprint-complete): names which canonical
    // spec key regret is measured against; never shapes a cached
    // value.
    std::string oracle = "offline:d=10";

    // mcd-lint: allow(fingerprint-complete): cell selection only —
    // each selected cell keys on its canonical policy spec.
    std::vector<std::string> policies;

    // mcd-lint: allow(fingerprint-complete): cell selection only —
    // each selected cell keys on its canonical workload spec.
    std::vector<std::string> workloads;
};

} // namespace mcd::exp

#endif
