// Miniature PowerConfig for mcd_lint's fixture tests.

#ifndef FIX_POWER_POWER_HH
#define FIX_POWER_POWER_HH

#include <array>

namespace mcd::power
{

struct PowerConfig
{
    std::array<double, 4> clockPj;
    double vMax = 1.20;

    PowerConfig();
};

} // namespace mcd::power

#endif
