// Miniature self-registering chip coordinator policy for mcd_lint's
// fixture tests.

#include "control/policy.hh"

namespace mcd::chip
{
namespace
{

class ToyCoordPolicy final : public control::Policy
{
  public:
    const char *name() const override { return "toy-coord"; }
};

MCD_REGISTER_POLICY(ToyCoordPolicy);

} // namespace
} // namespace mcd::chip
