// Miniature ChipConfig for mcd_lint's fixture tests.

#ifndef FIX_CHIP_CONFIG_HH
#define FIX_CHIP_CONFIG_HH

#include "sim/config.hh"

namespace mcd::chip
{

struct ChipConfig
{
    int l2PortCycles = 1;
    double uncoreMaxMhz = 1000.0;
    sim::Tick coordIntervalPs = 1000000;
};

} // namespace mcd::chip

#endif
