// Miniature self-registering workload for mcd_lint's fixture tests.

#include "workload/registry.hh"

namespace mcd::workload
{
namespace
{

class ToyWorkload final : public WorkloadFactory
{
  public:
    const char *name() const override { return "toy"; }
};

MCD_REGISTER_WORKLOAD(ToyWorkload);

} // namespace
} // namespace mcd::workload
