// Miniature SamplingConfig for mcd_lint's fixture tests: the same
// shape as the real src/sim/sampling.hh (data members plus a method
// declaration the field scanner must skip), small enough that golden
// findings stay readable.

#ifndef FIX_SIM_SAMPLING_HH
#define FIX_SIM_SAMPLING_HH

#include <cstdint>

namespace mcd::sim
{

struct SamplingConfig
{
    std::uint64_t intervalInstrs = 10000;
    std::uint64_t sampleInstrs = 600;
    double ciBiasPct = 1.0;

    std::uint64_t probeInstrs() const;
};

} // namespace mcd::sim

#endif
