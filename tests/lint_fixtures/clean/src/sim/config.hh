// Miniature SimConfig for mcd_lint's fixture tests: the same shape
// as the real src/sim/config.hh (data members, one deliberate
// annotated exception, one method declaration), small enough that
// golden findings stay readable.

#ifndef FIX_SIM_CONFIG_HH
#define FIX_SIM_CONFIG_HH

#include <cstdint>

#include "sim/sampling.hh"

namespace mcd::sim
{

using Tick = std::uint64_t;

struct SimConfig
{
    int fetchWidth = 4;
    double maxMhz = 1000.0;
    std::uint64_t jitterSeed = 7777;
    SamplingConfig sampling;

    // mcd-lint: allow(fingerprint-complete): a tripped watchdog
    // aborts before any outcome exists.
    Tick watchdogPs = 400;

    double voltageFor(double f) const;
};

} // namespace mcd::sim

#endif
