// Miniature self-registering policy for mcd_lint's fixture tests.

#include "control/policy.hh"

namespace mcd::control
{
namespace
{

class ToyPolicy final : public Policy
{
  public:
    const char *name() const override { return "toy"; }
};

MCD_REGISTER_POLICY(ToyPolicy);

} // namespace
} // namespace mcd::control
