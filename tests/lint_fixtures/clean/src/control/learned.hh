// Miniature LearnedConfig for mcd_lint's fixture tests: both
// training knobs shape the learned policy's frozen weights, so both
// must be hashed in configFingerprint (prefix `ln`).

#ifndef FIX_CONTROL_LEARNED_HH
#define FIX_CONTROL_LEARNED_HH

#include <cstdint>

namespace mcd::control
{

struct LearnedConfig
{
    std::uint64_t trainWindow = 40;
    std::uint64_t trainPasses = 2;
};

} // namespace mcd::control

#endif
