// Miniature wire formatter for mcd_lint's fixture tests: a clean
// MCD/1-style path that routes doubles through util::fmtDouble17,
// the target of the locale-safety and determinism mutations.

#include <string>

#include "util/text.hh"

namespace mcd::srv
{

std::string
formatRow(const std::string &key, double timePs, double energyNj)
{
    std::string out = "ROW " + key;
    out += " time_ps=" + util::fmtDouble17(timePs);
    out += " energy_nj=" + util::fmtDouble17(energyNj);
    return out;
}

} // namespace mcd::srv
