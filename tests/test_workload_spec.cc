/**
 * @file
 * The open workload subsystem: spec grammar and registry
 * canonicalization, the authoring text format's round-trip
 * contract, hard errors on unknown names/keys, and the
 * authored-program handle path.
 */

#include <gtest/gtest.h>

#include "workload/author.hh"
#include "workload/registry.hh"
#include "workload/spec.hh"
#include "workload/stream.hh"
#include "workload/suite.hh"

using namespace mcd::workload;

// ---------------------------------------------------------------- //
// WorkloadSpec grammar                                             //
// ---------------------------------------------------------------- //

TEST(WorkloadSpec, ParsePrintRoundTrip)
{
    WorkloadSpec spec;
    std::string err;
    ASSERT_TRUE(
        parseWorkloadSpec("gen:phases=4,mem=0.4,seed=7", spec, err))
        << err;
    EXPECT_EQ(spec.name, "gen");
    EXPECT_EQ(spec.str(), "gen:phases=4,mem=0.4,seed=7");
    ASSERT_NE(spec.find("mem"), nullptr);
    EXPECT_DOUBLE_EQ(spec.find("mem")->num, 0.4);
}

TEST(WorkloadSpec, GrammarErrors)
{
    WorkloadSpec spec;
    std::string err;
    EXPECT_FALSE(parseWorkloadSpec("", spec, err));
    EXPECT_FALSE(parseWorkloadSpec("Bad Name", spec, err));
    EXPECT_FALSE(parseWorkloadSpec("gen:phases", spec, err));
    EXPECT_FALSE(parseWorkloadSpec("gen:=4", spec, err));
    EXPECT_FALSE(
        parseWorkloadSpec("gen:seed=1,seed=2", spec, err));
    EXPECT_NE(err.find("given twice"), std::string::npos);
}

// ---------------------------------------------------------------- //
// Registry canonicalization                                        //
// ---------------------------------------------------------------- //

TEST(WorkloadRegistry, SuiteNamesCanonicalizeToThemselves)
{
    // Load-bearing for cache compatibility: the bench field of a
    // v6 cache key for a suite benchmark is the bare name, exactly
    // as in v4/v5.
    for (const std::string &name : suiteNames())
        EXPECT_EQ(canonicalWorkloadSpec(name), name);
}

TEST(WorkloadRegistry, GenCanonicalFormIsPinned)
{
    // Canonical form: schema order, defaults filled in, integers
    // plain, doubles 3-digit.  Pinned because it is the memo-cache
    // identity of every generated cell.
    EXPECT_EQ(canonicalWorkloadSpec("gen:phases=4,mem=0.4,seed=7"),
              "gen:phases=4,mem=0.400,fp=0.300,depth=2,"
              "diverge=0.200,imbalance=0.500,refscale=1.400,seed=7");
    // Parameter order and formatting never split a cell.
    EXPECT_EQ(canonicalWorkloadSpec("gen:seed=7,mem=0.40,phases=4"),
              canonicalWorkloadSpec("gen:phases=4,mem=0.4,seed=7"));
    // Idempotence: canonical text is a fixed point.
    std::string canon = canonicalWorkloadSpec("gen");
    EXPECT_EQ(canonicalWorkloadSpec(canon), canon);
}

TEST(WorkloadRegistry, UnknownNamesAndKeysAreHardErrors)
{
    EXPECT_THROW(canonicalWorkloadSpec("doom"), SpecError);
    try {
        canonicalWorkloadSpec("gen:warp=9");
        FAIL() << "unknown key did not throw";
    } catch (const SpecError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no parameter 'warp'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("phases"), std::string::npos) << msg;
    }
    // Range and integrality failures happen at canonicalization,
    // before anything is generated.
    EXPECT_THROW(canonicalWorkloadSpec("gen:mem=1.5"), SpecError);
    EXPECT_THROW(canonicalWorkloadSpec("gen:phases=2.5"),
                 SpecError);
    EXPECT_THROW(canonicalWorkloadSpec("gen:phases=0"), SpecError);
    // Suite benchmarks take no parameters at all.
    EXPECT_THROW(canonicalWorkloadSpec("gzip:level=9"), SpecError);
}

TEST(WorkloadRegistry, ListsSuiteGenAndProg)
{
    std::string listing = describeWorkloads();
    for (const std::string &name : suiteNames())
        EXPECT_NE(listing.find("  " + name), std::string::npos);
    EXPECT_NE(listing.find("  gen"), std::string::npos);
    EXPECT_NE(listing.find("  prog"), std::string::npos);
    EXPECT_NE(listing.find("seed=<number>"), std::string::npos);
}

// ---------------------------------------------------------------- //
// Authoring round trips                                            //
// ---------------------------------------------------------------- //

TEST(Authoring, EverySuiteBenchmarkRoundTrips)
{
    // print -> parse -> print is the identity on canonical text,
    // and the re-parsed program is behaviorally identical: same
    // stream, instruction for instruction.
    for (const std::string &name : suiteNames()) {
        Benchmark bm = makeBenchmark(name);
        std::string text = printProgram(bm);
        Benchmark back = parseProgram(text);
        EXPECT_EQ(printProgram(back), text) << name;
        EXPECT_EQ(back.program.functions.size(),
                  bm.program.functions.size());
        ASSERT_EQ(back.program.blockLayouts.size(),
                  bm.program.blockLayouts.size());
        for (std::size_t i = 0; i < bm.program.blockLayouts.size();
             ++i) {
            const auto &x = bm.program.blockLayouts[i];
            const auto &y = back.program.blockLayouts[i];
            ASSERT_EQ(x.size(), y.size()) << name << " block " << i;
            for (std::size_t j = 0; j < x.size(); ++j) {
                ASSERT_TRUE(x[j].cls == y[j].cls &&
                            x[j].dep1 == y[j].dep1 &&
                            x[j].dep2 == y[j].dep2 &&
                            x[j].takenBias == y[j].takenBias)
                    << name
                    << ": layouts must regenerate bit-identically";
            }
        }
        EXPECT_EQ(back.train.seed, bm.train.seed);
        EXPECT_EQ(back.ref.seed, bm.ref.seed);
    }
}

TEST(Authoring, RoundTrippedSuiteBenchmarkStreamsIdentically)
{
    Benchmark bm = makeBenchmark("mpeg2_decode");
    Benchmark back = parseProgram(printProgram(bm));
    Stream a(bm.program, bm.ref), b(back.program, back.ref);
    StreamItem ia, ib;
    for (int n = 0; n < 20'000; ++n) {
        bool more_a = a.next(ia), more_b = b.next(ib);
        ASSERT_EQ(more_a, more_b);
        if (!more_a)
            break;
        ASSERT_EQ(ia.kind, ib.kind);
        if (ia.kind == StreamItem::Kind::Instr) {
            ASSERT_EQ(ia.instr.pc, ib.instr.pc);
            ASSERT_EQ(ia.instr.cls, ib.instr.cls);
            ASSERT_EQ(ia.instr.addr, ib.instr.addr);
        }
    }
}

TEST(Authoring, ParseQuantizesToCanonicalPrecision)
{
    // Numeric values are quantized to the canonical 3-digit form as
    // they are read, so a program and its canonical text can never
    // disagree (the content hash addresses the behavior, not just
    // the text).
    const char *text = R"(
program: name=q, entry=main
input: set=train, seed=1, scale=1.0
input: set=ref, seed=2, scale=1.2
mix: id=k, load=0.2224999, branch=0.1
func: name=main
  loop: trips=40.1239, scale=0.6
    block: mix=k, n=100
  end
)";
    Benchmark bm = parseProgram(text);
    EXPECT_DOUBLE_EQ(bm.program.mixes[0].frac[7], 0.222);
    ASSERT_EQ(bm.program.functions[0].body[0].kind, StmtKind::Loop);
    EXPECT_DOUBLE_EQ(
        bm.program.functions[0].body[0].loop.baseTrips, 40.124);
    EXPECT_EQ(printProgram(parseProgram(printProgram(bm))),
              printProgram(bm));
}

TEST(Authoring, HardErrorsCarryLineNumbersAndWhatIsAccepted)
{
    auto expectError = [](const char *text, const char *needle) {
        try {
            parseProgram(text);
            FAIL() << "no error for: " << text;
        } catch (const SpecError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what() << "\n(wanted: " << needle << ")";
        }
    };
    const char *header = "program: name=p, entry=main\n"
                         "input: set=train, seed=1\n"
                         "input: set=ref, seed=2\n"
                         "mix: id=k, load=0.2\n";
    // Unknown section / key list what is accepted.
    expectError((std::string(header) + "bogus: a=1\n").c_str(),
                "unknown section 'bogus'");
    expectError((std::string(header) +
                 "func: name=main\n  block: mix=k, n=10, warp=9\n")
                    .c_str(),
                "has no key 'warp'");
    expectError("input: set=train\n", "must start with a 'program:");
    // Structural errors.
    expectError((std::string(header) +
                 "func: name=main\n  call: f=ghost\n")
                    .c_str(),
                "undefined function 'ghost'");
    expectError((std::string(header) +
                 "func: name=main\n  loop: trips=4\n"
                 "    block: mix=k, n=10\n")
                    .c_str(),
                "missing 'end'");
    expectError((std::string(header) +
                 "func: name=main\n  loop: trips=4\n  end\n")
                    .c_str(),
                "empty body");
    expectError((std::string(header) +
                 "func: name=main\n  block: mix=ghost, n=10\n")
                    .c_str(),
                "unknown mix id 'ghost'");
    expectError("program: name=p\nmix: id=k, load=0.2\n"
                "func: name=f\n  block: mix=k\n",
                "requires key 'n'");
    // Missing inputs / entry.
    expectError("program: name=p, entry=main\n"
                "func: name=main\n",
                "both 'input: set=train' and 'input: set=ref'");
    expectError("program: name=p, entry=nope\n"
                "input: set=train, seed=1\ninput: set=ref, seed=2\n"
                "mix: id=k, load=0.2\n"
                "func: name=main\n  block: mix=k, n=10\n",
                "entry function 'nope'");
}

// ---------------------------------------------------------------- //
// Authored-program handles                                         //
// ---------------------------------------------------------------- //

namespace
{

const char *const tinyProgram = R"(
program: name=tiny_two_phase, entry=main
input: set=train, seed=3, scale=1.0
input: set=ref, seed=4, scale=1.3
mix: id=a, load=0.3, branch=0.1, ws=1048576, stream=0.3
mix: id=b, fadd=0.25, fmul=0.15, load=0.2, ws=65536, stream=0.9
func: name=ph0
  loop: trips=20, scale=0.5
    block: mix=a, n=150
  end
func: name=ph1
  loop: trips=18, scale=0.5
    block: mix=b, n=140
  end
func: name=main
  loop: trips=6, scale=1.0
    call: f=ph0
    call: f=ph1
  end
)";

} // namespace

TEST(AuthoredHandles, ContentAddressedAndResolvable)
{
    std::string handle =
        WorkloadRegistry::instance().addProgram(tinyProgram);
    // prog:name=<name>,hash=<16 hex> — deterministic across loads.
    EXPECT_EQ(handle.rfind("prog:name=tiny_two_phase,hash=", 0), 0u)
        << handle;
    EXPECT_EQ(WorkloadRegistry::instance().addProgram(tinyProgram),
              handle);
    // The handle is a first-class workload spec: canonicalizes to
    // itself and resolves through the same path as suite names.
    EXPECT_EQ(canonicalWorkloadSpec(handle), handle);
    Benchmark bm = makeWorkload(handle);
    EXPECT_EQ(bm.program.name, "tiny_two_phase");
    EXPECT_EQ(bm.train.seed, 3u);
    // Semantically identical text with different formatting (extra
    // whitespace, reordered keys) content-addresses identically.
    std::string reformatted = tinyProgram;
    reformatted.replace(reformatted.find("seed=3, scale=1.0"),
                        17, "scale=1.0,   seed=3");
    EXPECT_EQ(WorkloadRegistry::instance().addProgram(reformatted),
              handle);
}

TEST(AuthoredHandles, UnloadedHandleIsACatchableError)
{
    try {
        makeWorkload("prog:name=never_loaded,hash=0123456789abcdef");
        FAIL() << "unloaded handle did not throw";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("not loaded"),
                  std::string::npos)
            << e.what();
    }
    // Required parameters: a bare `prog` cannot canonicalize.
    EXPECT_THROW(canonicalWorkloadSpec("prog"), SpecError);
    EXPECT_THROW(canonicalWorkloadSpec("prog:name=x"), SpecError);
}
