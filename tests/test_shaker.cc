/**
 * @file
 * Shaker tests: histogram invariants over real trace segments, the
 * quarter-frequency floor, external-memory exclusion, resource-edge
 * behaviour.
 */

#include <gtest/gtest.h>

#include "core/shaker.hh"
#include "sim/processor.hh"
#include "workload/suite.hh"

using namespace mcd;
using namespace mcd::core;
using namespace mcd::sim;
using namespace mcd::workload;

namespace
{

std::vector<InstrTiming>
traceOf(const std::string &bench, std::uint64_t n)
{
    struct Collect : TraceSink
    {
        std::vector<InstrTiming> items;
        void onInstr(const InstrTiming &t) override
        {
            items.push_back(t);
        }
    } sink;
    Benchmark bm = makeBenchmark(bench);
    SimConfig scfg;
    power::PowerConfig pcfg;
    Processor proc(scfg, pcfg, bm.program, bm.train);
    proc.setTraceSink(&sink);
    proc.run(n);
    return sink.items;
}

} // namespace

TEST(Shaker, EmptySegmentIsNoop)
{
    SegmentAnalyzer a;
    NodeHistograms out;
    a.analyze({}, out);
    EXPECT_EQ(out.segments, 0);
    EXPECT_EQ(out.instrs, 0u);
}

TEST(Shaker, HistogramMassMatchesEventCount)
{
    auto trace = traceOf("gsm_decode", 5000);
    SegmentAnalyzer a;
    NodeHistograms out;
    a.analyze(trace, out);
    EXPECT_EQ(out.instrs, trace.size());
    EXPECT_EQ(out.segments, 1);
    EXPECT_GT(out.spanPs, 0u);
    // Every scaled domain records non-negative cycles; FE records at
    // least fetch+dispatch+commit per instruction (3 cycles each).
    double fe = out.hist[0].totalCycles();
    EXPECT_GE(fe, 3.0 * static_cast<double>(trace.size()));
}

TEST(Shaker, NoWorkBelowQuarterFrequency)
{
    auto trace = traceOf("gsm_decode", 5000);
    ShakerConfig cfg;
    SegmentAnalyzer a(cfg);
    NodeHistograms out;
    a.analyze(trace, out);
    for (std::size_t d = 0; d < out.hist.size(); ++d) {
        const auto &h = out.hist[d];
        for (int b = 0; b < h.steps().numSteps(); ++b) {
            if (h.binCycles(b) > 0.0) {
                EXPECT_GE(h.steps().freqAt(b),
                          cfg.nominalMhz / cfg.maxStretch - 1e-9)
                    << "events must not be scaled below 1/4 nominal";
            }
        }
    }
}

TEST(Shaker, IdleDomainRecordsNothing)
{
    // gsm is pure-integer: the FP domain must stay empty.
    auto trace = traceOf("gsm_decode", 5000);
    SegmentAnalyzer a;
    NodeHistograms out;
    a.analyze(trace, out);
    EXPECT_DOUBLE_EQ(
        out.hist[static_cast<int>(Domain::FloatingPoint)].totalCycles(),
        0.0);
}

TEST(Shaker, DramTimeExcludedFromMemoryHistogram)
{
    // mcf misses to DRAM constantly; the memory-domain histogram must
    // contain only the scalable cache cycles, far less than total
    // memory-access time.
    auto trace = traceOf("mcf", 8000);
    std::uint64_t mem_time_cycles = 0;
    int l2_misses = 0;
    for (const auto &t : trace) {
        if (t.cls == InstrClass::Load && t.memDone > t.memStart)
            mem_time_cycles += (t.memDone - t.memStart) / 1000;
        l2_misses += t.l2Miss;
    }
    ASSERT_GT(l2_misses, 100);
    SegmentAnalyzer a;
    NodeHistograms out;
    a.analyze(trace, out);
    double mem_hist =
        out.hist[static_cast<int>(Domain::Memory)].totalCycles();
    EXPECT_LT(mem_hist, 0.7 * static_cast<double>(mem_time_cycles))
        << "DRAM latency must not be counted as scalable MEM work";
}

TEST(Shaker, SlackedWorkloadShakesDeeper)
{
    // A memory-bound trace leaves more integer-domain slack than a
    // lean integer trace; the shaker should scale INT work lower.
    auto int_trace = traceOf("adpcm_decode", 6000);
    auto mem_trace = traceOf("mcf", 6000);
    SegmentAnalyzer a;
    NodeHistograms int_out, mem_out;
    a.analyze(int_trace, int_out);
    a.analyze(mem_trace, mem_out);
    double int_mean =
        int_out.hist[static_cast<int>(Domain::Integer)].meanFreq();
    double mem_mean =
        mem_out.hist[static_cast<int>(Domain::Integer)].meanFreq();
    EXPECT_LT(mem_mean, int_mean);
}

TEST(AnalysisCollector, SegmentsByNodeAndHonorsCaps)
{
    auto trace = traceOf("gsm_decode", 12000);
    // Stamp alternating node ids to force segmentation.
    for (std::size_t i = 0; i < trace.size(); ++i)
        trace[i].node = (i / 1000) % 2 ? 7 : 9;
    ShakerConfig cfg;
    AnalysisCollector::Limits lim;
    lim.maxSegmentInstrs = 500;
    lim.maxInstrsPerNode = 2'000;
    lim.maxSegmentsPerNode = 100;
    AnalysisCollector c(cfg, lim);
    for (const auto &t : trace)
        c.onInstr(t);
    auto results = c.finish();
    ASSERT_EQ(results.size(), 2u);
    for (const auto &kv : results) {
        EXPECT_LE(kv.second.instrs, lim.maxInstrsPerNode + 500);
        EXPECT_GT(kv.second.segments, 1);
    }
}

TEST(AnalysisCollector, NodeZeroIgnored)
{
    auto trace = traceOf("gsm_decode", 2000);
    for (auto &t : trace)
        t.node = 0;
    AnalysisCollector c((ShakerConfig()));
    for (const auto &t : trace)
        c.onInstr(t);
    EXPECT_TRUE(c.finish().empty());
}
