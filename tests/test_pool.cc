/**
 * @file
 * Unit tests for the work-stealing thread pool (util/pool.hh):
 * completeness of parallelFor, stealing under skewed job sizes,
 * inline single-thread ordering, and exception propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/pool.hh"

using namespace mcd;

TEST(Pool, ParallelForRunsEveryIndexExactlyOnce)
{
    constexpr std::size_t N = 500;
    std::vector<std::atomic<int>> hits(N);
    for (auto &h : hits)
        h = 0;
    util::parallelFor(N, 8, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < N; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Pool, ParallelForZeroAndOneItems)
{
    std::atomic<int> calls{0};
    util::parallelFor(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    util::parallelFor(1, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 1);
}

TEST(Pool, MoreThreadsThanJobs)
{
    std::atomic<int> calls{0};
    util::parallelFor(3, 64, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 3);
}

TEST(Pool, SingleThreadRunsInlineInOrder)
{
    // jobs == 1 must execute on the calling thread, in submission
    // order — this is what makes --jobs 1 sweeps byte-identical to
    // the old serial loops.
    std::vector<std::size_t> order;
    std::thread::id caller = std::this_thread::get_id();
    util::parallelFor(16, 1, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);  // no lock needed: inline execution
    });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Pool, StealingDrainsSkewedQueues)
{
    // Round-robin submission puts the slow jobs on a single worker's
    // deque; siblings must steal them for the batch to finish
    // quickly.  Correctness (everything ran) is what we assert.
    util::ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i) {
        bool slow = i % 4 == 0;  // all land on worker 0
        pool.submit([&done, slow] {
            if (slow)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            ++done;
        });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 64);
}

TEST(Pool, WaitIsReusableAcrossBatches)
{
    util::ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&done] { ++done; });
        pool.wait();
        EXPECT_EQ(done.load(), 20 * (batch + 1));
    }
}

TEST(Pool, ExceptionPropagatesFromWait)
{
    util::ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 16; ++i)
        pool.submit([&done, i] {
            if (i == 7)
                throw std::runtime_error("boom");
            ++done;
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(done.load(), 15);  // the other jobs still ran
    // The error is consumed: the next batch starts clean.
    pool.submit([&done] { ++done; });
    EXPECT_NO_THROW(pool.wait());
}

TEST(Pool, ExceptionPropagatesFromParallelFor)
{
    EXPECT_THROW(util::parallelFor(8, 4,
                                   [](std::size_t i) {
                                       if (i == 3)
                                           throw std::runtime_error(
                                               "boom");
                                   }),
                 std::runtime_error);
}

TEST(Pool, DefaultThreadsIsPositive)
{
    EXPECT_GE(util::ThreadPool::defaultThreads(), 1u);
    util::ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1u);
}
