/**
 * @file
 * Tests for the parallel sweep engine and the memo-cache correctness
 * fixes: jobs=1 vs jobs=8 equivalence, concurrent store() safety,
 * strict cache-line validation, config-fingerprint keying, and
 * graceful handling of unwritable cache paths.
 *
 * The memo-abuse section at the bottom is the sweep server's
 * foundation: exact `memoHits()`/`memoMisses()` accounting (the
 * server's duplicate-suppression acceptance test keys off misses ==
 * distinct cells) and concurrent readers racing the cache-writer
 * thread over a cache file salted with truncated, garbled and
 * foreign-version lines.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "control/policy.hh"
#include "exp/experiment.hh"
#include "workload/suite.hh"

using namespace mcd;
using exp::ExpConfig;
using exp::Outcome;
using exp::Runner;
using exp::SweepCell;

namespace
{

/** Small windows so a full policy set stays test-sized. */
ExpConfig
smallConfig()
{
    ExpConfig cfg;
    cfg.productionWindow = 8'000;
    cfg.analysisWindow = 8'000;
    cfg.offlineInterval = 4'000;
    return cfg;
}

std::string
tempCachePath(const char *name)
{
    return ::testing::TempDir() + "mcd_exp_parallel_" + name + ".csv";
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

void
expectSameOutcome(const Outcome &a, const Outcome &b)
{
    EXPECT_DOUBLE_EQ(a.timePs, b.timePs);
    EXPECT_DOUBLE_EQ(a.energyNj, b.energyNj);
    EXPECT_DOUBLE_EQ(a.reconfigs, b.reconfigs);
    EXPECT_DOUBLE_EQ(a.overheadCycles, b.overheadCycles);
    EXPECT_DOUBLE_EQ(a.feCycles, b.feCycles);
    EXPECT_DOUBLE_EQ(a.dynReconfigPoints, b.dynReconfigPoints);
    EXPECT_DOUBLE_EQ(a.dynInstrPoints, b.dynInstrPoints);
    EXPECT_DOUBLE_EQ(a.staticReconfigPoints, b.staticReconfigPoints);
    EXPECT_DOUBLE_EQ(a.staticInstrPoints, b.staticInstrPoints);
    EXPECT_DOUBLE_EQ(a.tableBytes, b.tableBytes);
    EXPECT_DOUBLE_EQ(a.globalFreq, b.globalFreq);
    EXPECT_DOUBLE_EQ(a.metrics.slowdownPct, b.metrics.slowdownPct);
    EXPECT_DOUBLE_EQ(a.metrics.energySavingsPct,
                     b.metrics.energySavingsPct);
    EXPECT_DOUBLE_EQ(a.metrics.energyDelayImprovementPct,
                     b.metrics.energyDelayImprovementPct);
}

/** Every registered policy on two benchmarks: 12 interdependent
 *  cells (global depends on offline, every non-baseline cell on
 *  baseline, hybrid/profile share training). */
std::vector<SweepCell>
allPolicyCells()
{
    std::vector<SweepCell> cells;
    for (const char *bench : {"gsm_decode", "adpcm_decode"}) {
        cells.push_back(SweepCell::of(bench, "baseline"));
        cells.push_back(
            SweepCell::of(bench, "profile:mode=LF,d=10"));
        cells.push_back(SweepCell::of(bench, "offline:d=10"));
        cells.push_back(SweepCell::of(bench, "online:aggr=1"));
        cells.push_back(SweepCell::of(bench, "global:d=10"));
        cells.push_back(SweepCell::of(bench, "hybrid:d=10"));
    }
    return cells;
}

} // namespace

TEST(ExpParallel, JobsOneAndJobsEightAgreeExactly)
{
    std::vector<SweepCell> cells = allPolicyCells();
    Runner serial(smallConfig());
    std::vector<Outcome> s = serial.runSweep(cells, 1);
    Runner parallel(smallConfig());
    std::vector<Outcome> p = parallel.runSweep(cells, 8);
    ASSERT_EQ(s.size(), cells.size());
    ASSERT_EQ(p.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectSameOutcome(s[i], p[i]);
    }
}

TEST(ExpParallel, ConcurrentStoresLoseNoLines)
{
    std::string path = tempCachePath("concurrent");
    std::remove(path.c_str());
    ExpConfig cfg = smallConfig();
    cfg.cacheFile = path;
    const auto &suite = workload::suiteNames();
    ASSERT_GE(suite.size(), 6u);
    std::vector<SweepCell> cells;
    for (std::size_t i = 0; i < 6; ++i) {
        cells.push_back(SweepCell::of(suite[i], "baseline"));
        cells.push_back(SweepCell::of(suite[i], "offline:d=10"));
    }
    {
        Runner r(cfg);
        r.runSweep(cells, 8);
    }  // destructor drains + flushes the writer thread
    // 6 baseline + 6 offline outcomes, no duplicates, no torn lines.
    EXPECT_EQ(readLines(path).size(), 12u);
    Runner reload(cfg);
    EXPECT_EQ(reload.loadedFromCache(), 12u);
    EXPECT_EQ(reload.rejectedCacheLines(), 0u);
    std::remove(path.c_str());
}

TEST(ExpParallel, DuplicateCellsComputeOnce)
{
    std::string path = tempCachePath("dedup");
    std::remove(path.c_str());
    ExpConfig cfg = smallConfig();
    cfg.cacheFile = path;
    std::vector<SweepCell> cells(
        16, SweepCell::of("gsm_decode", "baseline"));
    std::vector<Outcome> out;
    {
        Runner r(cfg);
        out = r.runSweep(cells, 8);
    }
    for (std::size_t i = 1; i < out.size(); ++i)
        expectSameOutcome(out[0], out[i]);
    // 16 requests for one key -> exactly one computation and one
    // cache line.
    EXPECT_EQ(readLines(path).size(), 1u);
    std::remove(path.c_str());
}

TEST(ExpParallel, CacheHitShortCircuitsRecomputation)
{
    std::string path = tempCachePath("hit");
    std::remove(path.c_str());
    ExpConfig cfg = smallConfig();
    cfg.cacheFile = path;
    {
        Runner r(cfg);
        r.baseline("gsm_decode");
    }
    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    // Rewrite the stored outcome with a sentinel time; a second
    // runner must serve the sentinel (cache hit), not recompute.
    std::string key = lines[0].substr(0, lines[0].find(','));
    std::ofstream(path, std::ios::trunc)
        << key << ",12345,1,0,0,0,0,0,0,0,0,0,0,0\n";
    Runner reload(cfg);
    EXPECT_EQ(reload.loadedFromCache(), 1u);
    EXPECT_DOUBLE_EQ(reload.baseline("gsm_decode").timePs, 12345.0);
    std::remove(path.c_str());
}

TEST(ExpParallel, MismatchedConfigFingerprintMissesCache)
{
    ExpConfig a = smallConfig();
    ExpConfig same = smallConfig();
    ExpConfig b = smallConfig();
    b.sim.singleClock = true;
    ExpConfig c = smallConfig();
    c.sim.rampNsPerMhz *= 2.0;
    ExpConfig d = smallConfig();
    d.sim.fastForward = !d.sim.fastForward;
    EXPECT_EQ(exp::configFingerprint(a), exp::configFingerprint(same));
    EXPECT_NE(exp::configFingerprint(a), exp::configFingerprint(b));
    EXPECT_NE(exp::configFingerprint(a), exp::configFingerprint(c));
    // Kernel modes agree on timing but not on the last bits of the
    // energy sums; they must never share cache lines.
    EXPECT_NE(exp::configFingerprint(a), exp::configFingerprint(d));

    // A sentinel outcome stored under config a's key must not be
    // served to a runner configured with b.
    std::string path = tempCachePath("fingerprint");
    std::remove(path.c_str());
    a.cacheFile = b.cacheFile = path;
    {
        Runner r(a);
        r.baseline("gsm_decode");
    }
    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    std::string key = lines[0].substr(0, lines[0].find(','));
    std::ofstream(path, std::ios::trunc)
        << key << ",12345,1,0,0,0,0,0,0,0,0,0,0,0\n";
    Runner rb(b);
    EXPECT_EQ(rb.loadedFromCache(), 1u);  // line loads under a's key
    Outcome ob = rb.baseline("gsm_decode");  // ...but b recomputes
    EXPECT_NE(ob.timePs, 12345.0);
    std::remove(path.c_str());
}

TEST(ExpParallel, MalformedCacheLinesAreRejected)
{
    std::string path = tempCachePath("malformed");
    std::remove(path.c_str());
    ExpConfig cfg = smallConfig();
    cfg.cacheFile = path;
    {
        Runner r(cfg);
        r.baseline("gsm_decode");
    }
    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    const std::string &good = lines[0];
    std::string truncated = good.substr(0, good.size() / 2);
    {
        std::ofstream out(path, std::ios::trunc);
        out << good << '\n';
        out << truncated << '\n';          // interrupted-run tail
        // An extra numeric field is absorbed into the key (keys may
        // contain commas since canonical specs do), landing under a
        // dead key that can never be requested — harmless.
        out << good << ",99\n";
        out << "k,1,2,3,4,5,6,7,8,9,10,1.5x,12,13\n";  // bad numeric
        out << ",1,2,3,4,5,6,7,8,9,10,11,12,13\n";      // empty key
        out << '\n';                       // blank line: ignored
        out << good;                       // no trailing newline: ok
    }
    Runner reload(cfg);
    EXPECT_EQ(reload.loadedFromCache(), 3u);
    EXPECT_EQ(reload.rejectedCacheLines(), 3u);
    std::remove(path.c_str());
}

TEST(ExpParallel, UnwritableCachePathDegradesGracefully)
{
    ExpConfig cfg = smallConfig();
    cfg.cacheFile = "/nonexistent-mcd-dir/deep/cache.csv";
    Runner r(cfg);  // warns once, then runs without persistence
    Outcome o = r.baseline("gsm_decode");
    EXPECT_GT(o.timePs, 0.0);
    // The in-memory memo still works across a second request.
    expectSameOutcome(o, r.baseline("gsm_decode"));
}

TEST(ExpParallel, SweepResultsMatchDirectPolicyCalls)
{
    // The batch API must be a pure reordering of the entry points
    // the old serial bench loops used.
    ExpConfig cfg = smallConfig();
    Runner sweep(cfg);
    std::vector<SweepCell> cells = allPolicyCells();
    std::vector<Outcome> out = sweep.runSweep(cells, 8);
    Runner direct(cfg);
    std::size_t i = 0;
    for (const char *bench : {"gsm_decode", "adpcm_decode"}) {
        SCOPED_TRACE(bench);
        expectSameOutcome(out[i++], direct.baseline(bench));
        expectSameOutcome(
            out[i++],
            direct.profile(bench, core::ContextMode::LF, 10.0));
        expectSameOutcome(out[i++], direct.offline(bench, 10.0));
        expectSameOutcome(out[i++], direct.online(bench, 1.0));
        expectSameOutcome(
            out[i++],
            direct.run(bench, control::PolicySpec::of("global")
                                  .set("d", 10.0)));
        expectSameOutcome(
            out[i++],
            direct.run(bench, control::PolicySpec::of("hybrid")
                                  .set("d", 10.0)));
    }
}

// ---------------------------------------------------------------- //
// Memo abuse: the counters and races the sweep server builds on    //
// ---------------------------------------------------------------- //

TEST(ExpParallel, MemoCountersCountDistinctCellsExactly)
{
    // 8 copies of 4 distinct cells, raced across 8 jobs.  However
    // the threads interleave, exactly one lookup per distinct key
    // wins ownership: misses == 4 == cells actually simulated.
    std::vector<SweepCell> base = {
        SweepCell::of("gsm_decode", "baseline"),
        SweepCell::of("gsm_decode", "offline:d=10"),
        SweepCell::of("adpcm_decode", "baseline"),
        SweepCell::of("adpcm_decode", "offline:d=10"),
    };
    std::vector<SweepCell> cells;
    for (int rep = 0; rep < 8; ++rep)
        cells.insert(cells.end(), base.begin(), base.end());
    Runner r(smallConfig());
    r.runSweep(cells, 8);
    EXPECT_EQ(r.memoMisses(), 4u);
    // Hits are deterministic too: 32 sweep lookups + 16 baseline
    // lookups from the offline cells' metrics (vsBaseline sits
    // outside the memo, so every offline run() does one), minus the
    // 4 owners.
    EXPECT_EQ(r.memoHits(), 32u + 16u - 4u);

    // The per-call flag reports the same thing request-by-request.
    Runner fresh(smallConfig());
    bool hit = true;
    fresh.run("gsm_decode", control::PolicySpec::of("baseline"),
              &hit);
    EXPECT_FALSE(hit);
    fresh.run("gsm_decode", control::PolicySpec::of("baseline"),
              &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(fresh.memoMisses(), 1u);
    EXPECT_EQ(fresh.memoHits(), 1u);
}

TEST(ExpParallel, CachePreloadedCellCountsAsMemoHit)
{
    std::string path = tempCachePath("preload_hit");
    std::remove(path.c_str());
    ExpConfig cfg = smallConfig();
    cfg.cacheFile = path;
    {
        Runner r(cfg);
        r.baseline("gsm_decode");
    }
    Runner reload(cfg);
    ASSERT_EQ(reload.loadedFromCache(), 1u);
    bool hit = false;
    reload.run("gsm_decode", control::PolicySpec::of("baseline"),
               &hit);
    // A CSV-preloaded cell is a hit, not a miss: nothing was
    // simulated on this runner's watch.
    EXPECT_TRUE(hit);
    EXPECT_EQ(reload.memoHits(), 1u);
    EXPECT_EQ(reload.memoMisses(), 0u);
    std::remove(path.c_str());
}

TEST(ExpParallel, ConcurrentReadersRaceWriterOverCorruptCache)
{
    // The hostile-restart scenario: the cache file holds a mix of a
    // valid (sentinel-rewritten) line, a foreign-CACHE_VERSION line,
    // a foreign-fingerprint line, a truncated tail and a garbled
    // numeric — then 8 sweep jobs plus dedicated reader threads race
    // the appending cache-writer thread over it.
    std::string path = tempCachePath("abuse");
    std::remove(path.c_str());
    ExpConfig cfg = smallConfig();
    cfg.cacheFile = path;
    {
        Runner r(cfg);
        r.baseline("gsm_decode");
    }
    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    const std::string &good = lines[0];
    ASSERT_EQ(good[0], 'v');
    std::string key = good.substr(0, good.find(','));
    // Same key, different cache version: loads, but under a dead key
    // no current-version request can ever form.
    std::string foreignVersion =
        "v0" + good.substr(good.find('|'));
    // Same version, one fingerprint hex digit flipped: also dead.
    std::string foreignFp = good;
    std::size_t fpDigit = good.find('|') + 2;  // "...|c<hex16>|..."
    foreignFp[fpDigit] = foreignFp[fpDigit] == '0' ? '1' : '0';
    {
        std::ofstream out(path, std::ios::trunc);
        out << key << ",777,1,0,0,0,0,0,0,0,0,0,0,0\n";
        out << foreignVersion << '\n';
        out << foreignFp << '\n';
        out << good.substr(0, good.size() / 2) << '\n';
        out << key << ",1,2,3,4,nope,6,7,8,9,10,11,12,13\n";
    }

    std::vector<SweepCell> base = {
        SweepCell::of("gsm_decode", "baseline"),
        SweepCell::of("gsm_decode", "offline:d=10"),
        SweepCell::of("adpcm_decode", "baseline"),
        SweepCell::of("adpcm_decode", "offline:d=10"),
    };
    std::vector<SweepCell> cells;
    for (int rep = 0; rep < 8; ++rep)
        cells.insert(cells.end(), base.begin(), base.end());
    std::vector<Outcome> out;
    {
        Runner race(cfg);
        EXPECT_EQ(race.loadedFromCache(), 3u);
        EXPECT_EQ(race.rejectedCacheLines(), 2u);

        // Readers hammer the preloaded cell while the sweep computes
        // the other three and the writer thread appends them.
        std::vector<std::thread> readers;
        for (int t = 0; t < 3; ++t)
            readers.emplace_back([&race] {
                for (int i = 0; i < 50; ++i) {
                    bool hit = false;
                    Outcome o = race.run(
                        "gsm_decode",
                        control::PolicySpec::of("baseline"), &hit);
                    EXPECT_TRUE(hit);
                    EXPECT_DOUBLE_EQ(o.timePs, 777.0);
                }
            });
        out = race.runSweep(cells, 8);
        for (auto &t : readers)
            t.join();
        // Only the three non-preloaded cells were simulated, however
        // the readers and jobs interleaved.
        EXPECT_EQ(race.memoMisses(), 3u);
    }  // drain the writer

    // Duplicates agree with each other...
    for (std::size_t i = 4; i < out.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectSameOutcome(out[i % 4], out[i]);
    }
    // ...and the sentinel was served for the valid line, never the
    // dead foreign-version/fingerprint sentinels or a recompute.
    EXPECT_DOUBLE_EQ(out[0].timePs, 777.0);
    EXPECT_NE(out[2].timePs, 777.0);

    // The writer appended the three computed cells after the corrupt
    // seed; a fresh runner loads 3 + 3 lines, still rejecting 2, and
    // serves the appended outcomes byte-exactly.
    Runner reload(cfg);
    EXPECT_EQ(reload.loadedFromCache(), 6u);
    EXPECT_EQ(reload.rejectedCacheLines(), 2u);
    bool hit = false;
    Outcome again = reload.run(
        "adpcm_decode", control::PolicySpec::of("baseline"), &hit);
    EXPECT_TRUE(hit);
    expectSameOutcome(again, out[2]);
    std::remove(path.c_str());
}
