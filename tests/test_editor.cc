/**
 * @file
 * Application-editor tests: instrumentation/reconfiguration point
 * selection (the paper's Figure 3 rule: nodes on paths to
 * long-running nodes are instrumented, long-running nodes also
 * reconfigure), L+F/F static settings, table sizing.
 */

#include <gtest/gtest.h>

#include "core/editor.hh"
#include "core/profiler.hh"
#include "workload/program.hh"

using namespace mcd;
using namespace mcd::core;
using namespace mcd::workload;

namespace
{

/**
 * deep: main -> mid -> hot (hot is long-running); cold is a sibling
 * subtree with no long-running nodes.
 */
struct Fixture
{
    Program program;
    CallTree tree{ContextMode::LFCP};
    std::map<std::uint32_t, sim::FreqSet> freqs;

    explicit Fixture(ContextMode mode)
        : tree(mode)
    {
        ProgramBuilder b("editor");
        InstructionMix m;
        MixId mx = b.mix(m);
        b.func("hot");
        b.loop(500, 0.0, [&] { b.block(mx, 40); });
        b.func("mid");
        b.block(mx, 30);
        b.call("hot");
        b.func("cold");
        b.block(mx, 60);
        b.func("main");
        b.loop(3, 0.0, [&] {
            b.call("mid");
            b.call("cold");
        });
        program = b.build("main");
        tree = profileProgram(program, InputSet{}, mode,
                              ProfileConfig());
        for (auto id : tree.longRunningIds())
            freqs[id] = {500.0, 500.0, 250.0, 750.0};
    }
};

} // namespace

TEST(Editor, PathModeInstrumentsAncestorsOnly)
{
    Fixture fx(ContextMode::LFCP);
    auto plan = buildPlan(fx.tree, fx.freqs, ContextMode::LFCP);
    const Function *hot = fx.program.findFunction("hot");
    const Function *mid = fx.program.findFunction("mid");
    const Function *cold = fx.program.findFunction("cold");
    const Function *main_fn = fx.program.findFunction("main");
    EXPECT_TRUE(plan.instrumentedFuncs.count(hot->id));
    EXPECT_TRUE(plan.instrumentedFuncs.count(mid->id));
    EXPECT_TRUE(plan.instrumentedFuncs.count(main_fn->id));
    EXPECT_FALSE(plan.instrumentedFuncs.count(cold->id))
        << "subtrees without long-running nodes are untouched";
}

TEST(Editor, ReconfigurationPointsAreLongRunningEntities)
{
    Fixture fx(ContextMode::LFCP);
    auto plan = buildPlan(fx.tree, fx.freqs, ContextMode::LFCP);
    // hot's loop (and possibly hot itself) are the long-running
    // entities; reconfig points must be fewer than instr points.
    EXPECT_GT(plan.staticReconfigPoints, 0);
    EXPECT_LT(plan.staticReconfigPoints, plan.staticInstrPoints);
}

TEST(Editor, StaticModesHaveNoTrackingInstrumentation)
{
    Fixture fx(ContextMode::LF);
    auto plan = buildPlan(fx.tree, fx.freqs, ContextMode::LF);
    EXPECT_TRUE(plan.instrumentedFuncs.empty());
    EXPECT_TRUE(plan.instrumentedLoops.empty());
    EXPECT_TRUE(plan.instrumentedSites.empty());
    // Every instrumentation point is a reconfiguration point.
    EXPECT_EQ(plan.staticInstrPoints, plan.staticReconfigPoints);
    EXPECT_GT(plan.staticReconfigPoints, 0);
    EXPECT_EQ(plan.nextNodeTableBytes, 0u);
}

TEST(Editor, StaticFrequenciesAreWeightedAverages)
{
    Fixture fx(ContextMode::LF);
    // Two long-running nodes of the same entity with different
    // frequencies: construct artificially.
    auto ids = fx.tree.longRunningIds();
    ASSERT_FALSE(ids.empty());
    auto plan = buildPlan(fx.tree, fx.freqs, ContextMode::LF);
    // The single loop entity's static setting equals the node's.
    ASSERT_FALSE(plan.staticLoopFreqs.empty());
    const auto &f = plan.staticLoopFreqs.begin()->second;
    EXPECT_DOUBLE_EQ(f[0], 500.0);
    EXPECT_DOUBLE_EQ(f[2], 250.0);
}

TEST(Editor, FModeIgnoresLoops)
{
    Fixture fx(ContextMode::F);
    auto plan = buildPlan(fx.tree, fx.freqs, ContextMode::F);
    EXPECT_TRUE(plan.staticLoopFreqs.empty());
    // hot (the function) carries the reconfiguration instead.
    EXPECT_FALSE(plan.staticFuncFreqs.empty());
}

TEST(Editor, TableSizesScaleWithTree)
{
    Fixture fx(ContextMode::LFCP);
    auto plan = buildPlan(fx.tree, fx.freqs, ContextMode::LFCP);
    std::size_t n = fx.tree.size();
    std::size_t s = plan.instrumentedFuncs.size();
    EXPECT_EQ(plan.nextNodeTableBytes, (n + 1) * (s + 1) * 2);
    EXPECT_EQ(plan.freqTableBytes, (n + 1) * 8);
}

TEST(Editor, SiteInstrumentationOnlyInCModes)
{
    Fixture fcp(ContextMode::FCP);
    auto plan_c = buildPlan(fcp.tree, fcp.freqs, ContextMode::FCP);
    EXPECT_FALSE(plan_c.instrumentedSites.empty());

    Fixture fp(ContextMode::FP);
    auto plan_p = buildPlan(fp.tree, fp.freqs, ContextMode::FP);
    EXPECT_TRUE(plan_p.instrumentedSites.empty());
}
