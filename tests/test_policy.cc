/**
 * @file
 * Tests for the open policy API: registry registration/lookup,
 * PolicySpec parse/print round-trips and error messages,
 * canonical-spec cache-key stability, schema defaults (unset
 * parameters fall back to documented defaults, never zero), and a
 * cross-check that every ported policy's Outcome is bit-identical
 * between the deprecated entry points and the spec-based API at one
 * job.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "control/policy.hh"
#include "exp/experiment.hh"
#include "workload/suite.hh"

#include "cache_key_util.hh"

using namespace mcd;
using control::ParamInfo;
using control::ParamType;
using control::Policy;
using control::PolicyRegistry;
using control::PolicySpec;
using exp::ExpConfig;
using exp::Outcome;
using exp::Runner;
using exp::SweepCell;

namespace
{

/** Small windows so a full policy set stays test-sized. */
ExpConfig
smallConfig()
{
    ExpConfig cfg;
    cfg.productionWindow = 8'000;
    cfg.analysisWindow = 8'000;
    cfg.offlineInterval = 4'000;
    return cfg;
}

/** Canonicalize a spec string; fails the test on error. */
std::string
canon(const std::string &text)
{
    PolicySpec spec;
    std::string err;
    EXPECT_TRUE(control::parseSpec(text, spec, err)) << err;
    EXPECT_TRUE(PolicyRegistry::instance().canonicalize(spec, err))
        << err;
    return spec.str();
}

/** The canonicalization error for a spec string (empty = success). */
std::string
canonError(const std::string &text)
{
    PolicySpec spec;
    std::string err;
    if (!control::parseSpec(text, spec, err))
        return err;
    if (!PolicyRegistry::instance().canonicalize(spec, err))
        return err;
    return "";
}

void
expectSameOutcome(const Outcome &a, const Outcome &b)
{
    EXPECT_DOUBLE_EQ(a.timePs, b.timePs);
    EXPECT_DOUBLE_EQ(a.energyNj, b.energyNj);
    EXPECT_DOUBLE_EQ(a.reconfigs, b.reconfigs);
    EXPECT_DOUBLE_EQ(a.overheadCycles, b.overheadCycles);
    EXPECT_DOUBLE_EQ(a.feCycles, b.feCycles);
    EXPECT_DOUBLE_EQ(a.dynReconfigPoints, b.dynReconfigPoints);
    EXPECT_DOUBLE_EQ(a.dynInstrPoints, b.dynInstrPoints);
    EXPECT_DOUBLE_EQ(a.staticReconfigPoints, b.staticReconfigPoints);
    EXPECT_DOUBLE_EQ(a.staticInstrPoints, b.staticInstrPoints);
    EXPECT_DOUBLE_EQ(a.tableBytes, b.tableBytes);
    EXPECT_DOUBLE_EQ(a.globalFreq, b.globalFreq);
    EXPECT_DOUBLE_EQ(a.metrics.slowdownPct, b.metrics.slowdownPct);
    EXPECT_DOUBLE_EQ(a.metrics.energySavingsPct,
                     b.metrics.energySavingsPct);
    EXPECT_DOUBLE_EQ(a.metrics.energyDelayImprovementPct,
                     b.metrics.energyDelayImprovementPct);
}

} // namespace

// ---------------------------------------------------------------- //
// Registry                                                         //
// ---------------------------------------------------------------- //

TEST(PolicyRegistry, BuiltinsAreRegistered)
{
    PolicyRegistry &reg = PolicyRegistry::instance();
    for (const char *name : {"baseline", "profile", "offline",
                             "online", "global", "hybrid"}) {
        const Policy *p = reg.find(name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_STREQ(p->name(), name);
        EXPECT_STRNE(p->description(), "");
    }
}

TEST(PolicyRegistry, UnknownNameIsNull)
{
    EXPECT_EQ(PolicyRegistry::instance().find("nonesuch"), nullptr);
    EXPECT_EQ(PolicyRegistry::instance().find(""), nullptr);
}

TEST(PolicyRegistry, ListIsSortedAndComplete)
{
    std::vector<const Policy *> all =
        PolicyRegistry::instance().list();
    ASSERT_GE(all.size(), 6u);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(std::string(all[i - 1]->name()),
                  std::string(all[i]->name()));
}

TEST(PolicyRegistry, OnlyBaselineAndChipCoordAreAbsolute)
{
    // baseline is the reference every metric is computed against;
    // chip-coord never runs a single-core cell at all (it governs a
    // chip's shared uncore), so neither reports baseline-relative
    // metrics.
    for (const Policy *p : PolicyRegistry::instance().list()) {
        std::string name = p->name();
        EXPECT_EQ(p->relativeToBaseline(),
                  name != "baseline" && name != "chip-coord");
    }
}

// ---------------------------------------------------------------- //
// PolicySpec parse / print / canonicalize                          //
// ---------------------------------------------------------------- //

TEST(PolicySpec, ParsePrintRoundTrip)
{
    // parse -> canonicalize -> print -> parse -> canonicalize must
    // be the identity on the printed form.
    const char *inputs[] = {
        "baseline",
        "profile",
        "profile:d=5,mode=LFCP",
        "profile:mode=lfcp",
        "profile:mode=L+F+C+P,d=10",
        "offline:d=10",
        "online:aggr=1.5",
        "global",
        "hybrid:guard=0.05",
    };
    for (const char *in : inputs) {
        SCOPED_TRACE(in);
        std::string once = canon(in);
        EXPECT_EQ(canon(once), once);
    }
}

TEST(PolicySpec, CanonicalFormsArePinned)
{
    // The canonical string is the cache key's policy fragment; these
    // exact forms are load-bearing for cache hits across runs.  If
    // one changes, bump exp CACHE_VERSION.
    EXPECT_EQ(canon("baseline"), "baseline");
    EXPECT_EQ(canon("profile"), "profile:mode=LF,d=5.000");
    EXPECT_EQ(canon("profile:d=10,mode=lfcp"),
              "profile:mode=LFCP,d=10.000");
    EXPECT_EQ(canon("offline:d=10"), "offline:d=10.000");
    EXPECT_EQ(canon("online:aggr=1.5"), "online:aggr=1.500");
    EXPECT_EQ(canon("global"), "global:d=5.000");
    EXPECT_EQ(canon("hybrid"),
              "hybrid:mode=LF,d=5.000,guard=0.100,interval=2000.000");
}

TEST(PolicySpec, UnsetParamsTakeSchemaDefaultsNotZero)
{
    // The old SweepCell defaulted d to 0.0 while ExpConfig
    // documented 5.0; the schema is now the single authority.
    PolicySpec spec = PolicySpec::of("offline");
    std::string err;
    ASSERT_TRUE(PolicyRegistry::instance().canonicalize(spec, err))
        << err;
    EXPECT_DOUBLE_EQ(spec.num("d"), control::DEFAULT_SLOWDOWN_PCT);
    EXPECT_DOUBLE_EQ(spec.num("d"), 5.0);

    PolicySpec prof = PolicySpec::of("profile");
    ASSERT_TRUE(PolicyRegistry::instance().canonicalize(prof, err));
    EXPECT_DOUBLE_EQ(prof.num("d"), 5.0);
    EXPECT_EQ(prof.mode("mode"), core::ContextMode::LF);
}

TEST(PolicySpec, ProgrammaticBuildersMatchParsedText)
{
    EXPECT_EQ(PolicySpec::of("profile")
                  .set("mode", core::ContextMode::LFCP)
                  .set("d", 10.0)
                  .str(),
              "profile:mode=LFCP,d=10.000");
    EXPECT_EQ(PolicySpec::of("online").set("aggr", 1.5).str(),
              "online:aggr=1.500");
    // set() overwrites instead of duplicating.
    EXPECT_EQ(
        PolicySpec::of("offline").set("d", 2.0).set("d", 4.0).str(),
        "offline:d=4.000");
}

TEST(PolicySpec, BadSpecsReportUsefulErrors)
{
    auto expectError = [](const std::string &spec,
                          const std::string &substr) {
        std::string err = canonError(spec);
        EXPECT_NE(err.find(substr), std::string::npos)
            << "spec '" << spec << "': error '" << err
            << "' does not mention '" << substr << "'";
    };
    expectError("nonesuch", "unknown policy 'nonesuch'");
    expectError("nonesuch", "known:");
    expectError("offline:x=1", "no parameter 'x'");
    expectError("offline:x=1", "takes: d");
    expectError("baseline:d=1", "takes none");
    expectError("offline:d=abc", "'abc' is not a number");
    expectError("profile:mode=XY", "not a context mode");
    expectError("offline:d", "not of the form key=value");
    expectError("offline:d=1,d=2", "given twice");
    expectError("hybrid:interval=0", "out of range [1, 1e+12]");
    expectError("hybrid:interval=-1", "out of range");
    expectError("hybrid:interval=2000.4", "must be an integer");
    expectError("hybrid:guard=1.5", "out of range [0, 1]");
    expectError("offline:d=-3", "out of range");
    expectError("Offline", "bad policy spec");
    expectError("", "bad policy spec");
}

TEST(PolicySpec, ModeParsingAcceptsAllSpellings)
{
    core::ContextMode m;
    EXPECT_TRUE(control::parseContextMode("LFCP", m));
    EXPECT_EQ(m, core::ContextMode::LFCP);
    EXPECT_TRUE(control::parseContextMode("l+f+c+p", m));
    EXPECT_EQ(m, core::ContextMode::LFCP);
    EXPECT_TRUE(control::parseContextMode("f", m));
    EXPECT_EQ(m, core::ContextMode::F);
    EXPECT_FALSE(control::parseContextMode("LFX", m));
    EXPECT_FALSE(control::parseContextMode("", m));
}

// ---------------------------------------------------------------- //
// Cache keys                                                       //
// ---------------------------------------------------------------- //

TEST(PolicyCacheKey, CanonicalSpecIsTheKeyFragment)
{
    Runner runner(smallConfig());
    std::string key = runner.cacheKey(
        "gsm_decode", PolicySpec::of("offline").set("d", 10.0));
    // <tag><16-hex fingerprint>|<canonical policy spec>|<canonical
    // workload spec>|<context> — tag pinned in cache_key_util.hh.
    ASSERT_TRUE(testpins::hasCacheKeyTag(key)) << key;
    EXPECT_EQ(testpins::cacheKeyTail(key),
              "|offline:d=10.000|gsm_decode|w8000|i4000");
}

TEST(PolicyCacheKey, EquivalentSpecsShareOneKey)
{
    Runner runner(smallConfig());
    SweepCell a = SweepCell::of("mcf", "profile:d=10,mode=lf");
    SweepCell b = SweepCell::of(
        "mcf", PolicySpec::of("profile")
                   .set("mode", core::ContextMode::LF)
                   .set("d", 10.0));
    EXPECT_EQ(runner.cacheKey(a.bench, a.spec),
              runner.cacheKey(b.bench, b.spec));
}

TEST(PolicyCacheKey, ContextKnobsAndConfigChangeTheKey)
{
    ExpConfig base = smallConfig();
    Runner r1(base);
    ExpConfig interval = base;
    interval.offlineInterval = 2'000;
    Runner r2(interval);
    ExpConfig physics = base;
    physics.sim.singleClock = true;
    Runner r3(physics);

    PolicySpec off = PolicySpec::of("offline").set("d", 10.0);
    EXPECT_NE(r1.cacheKey("mcf", off), r2.cacheKey("mcf", off));
    EXPECT_NE(r1.cacheKey("mcf", off), r3.cacheKey("mcf", off));
    // The baseline does not depend on the off-line interval, so its
    // key must not change with it (no spurious cache misses).
    PolicySpec bl = PolicySpec::of("baseline");
    EXPECT_EQ(r1.cacheKey("mcf", bl), r2.cacheKey("mcf", bl));
}

TEST(PolicyCacheKey, CommaBearingKeysRoundTripThroughTheFileCache)
{
    // Canonical specs contain commas (profile:mode=LF,d=10.000), so
    // cache lines are parsed from the tail; a multi-parameter key
    // must survive a write/reload cycle and serve the cached value.
    std::string path = ::testing::TempDir() + "mcd_policy_cache.csv";
    std::remove(path.c_str());
    ExpConfig cfg = smallConfig();
    cfg.cacheFile = path;
    double t1 = 0.0;
    {
        Runner r(cfg);
        t1 = r.run("gsm_decode",
                   PolicySpec::of("profile").set("d", 10.0))
                 .timePs;
    }
    Runner reload(cfg);
    EXPECT_EQ(reload.loadedFromCache(), 2u);  // profile + baseline
    EXPECT_EQ(reload.rejectedCacheLines(), 0u);
    EXPECT_DOUBLE_EQ(
        reload
            .run("gsm_decode",
                 PolicySpec::of("profile").set("d", 10.0))
            .timePs,
        t1);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------- //
// Ported policies: spec API vs deprecated entry points             //
// ---------------------------------------------------------------- //

TEST(PolicyPort, SpecOutcomesBitIdenticalToDeprecatedEntryPoints)
{
    const char *bench = "gsm_decode";
    ExpConfig cfg = smallConfig();
    Runner oldApi(cfg);
    Runner newApi(cfg);
    expectSameOutcome(oldApi.baseline(bench),
                      newApi.run(bench, PolicySpec::of("baseline")));
    expectSameOutcome(
        oldApi.profile(bench, core::ContextMode::LF, 10.0),
        newApi.run(bench, PolicySpec::of("profile")
                              .set("mode", core::ContextMode::LF)
                              .set("d", 10.0)));
    expectSameOutcome(
        oldApi.offline(bench, 10.0),
        newApi.run(bench, PolicySpec::of("offline").set("d", 10.0)));
    expectSameOutcome(
        oldApi.online(bench, 1.0),
        newApi.run(bench, PolicySpec::of("online").set("aggr", 1.0)));
    // The old global entry matched the off-line run at ExpConfig::d.
    expectSameOutcome(
        oldApi.global(bench),
        newApi.run(bench,
                   PolicySpec::of("global").set("d", cfg.d)));
}

TEST(PolicyPort, SweepCellShimsMatchSpecCells)
{
    ExpConfig cfg = smallConfig();
    const char *bench = "adpcm_decode";
    std::vector<SweepCell> shim = {
        SweepCell::baseline(bench),
        SweepCell::profile(bench, core::ContextMode::LF, 10.0),
        SweepCell::offline(bench, 10.0),
        SweepCell::online(bench, 1.0),
        // No global shim exists (a spec built ahead of time cannot
        // reproduce the enum cell's run-time ExpConfig::d read);
        // the explicit spec form is the only way to build the cell.
        SweepCell::of(bench, control::PolicySpec::of("global")
                                 .set("d", 5.0)),
    };
    std::vector<SweepCell> spec = {
        SweepCell::of(bench, "baseline"),
        SweepCell::of(bench, "profile:mode=LF,d=10"),
        SweepCell::of(bench, "offline:d=10"),
        SweepCell::of(bench, "online:aggr=1"),
        SweepCell::of(bench, "global:d=5"),
    };
    Runner a(cfg);
    std::vector<Outcome> oa = a.runSweep(shim, 1);
    Runner b(cfg);
    std::vector<Outcome> ob = b.runSweep(spec, 1);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
        SCOPED_TRACE(i);
        expectSameOutcome(oa[i], ob[i]);
    }
}

// ---------------------------------------------------------------- //
// The hybrid policy (proof the registry is open)                   //
// ---------------------------------------------------------------- //

TEST(HybridPolicy, RunsDeterministicallyAndSweeps)
{
    ExpConfig cfg = smallConfig();
    Runner r1(cfg);
    Outcome a = r1.run("gsm_decode", PolicySpec::of("hybrid"));
    EXPECT_GT(a.timePs, 0.0);
    EXPECT_GT(a.energyNj, 0.0);
    Runner r2(cfg);
    Outcome b = r2.run("gsm_decode", PolicySpec::of("hybrid"));
    expectSameOutcome(a, b);

    // Sweepable like any registered policy, parameters included.
    Runner r3(cfg);
    std::vector<SweepCell> cells = {
        SweepCell::of("gsm_decode", "hybrid:guard=0.05,d=10"),
        SweepCell::of("adpcm_decode", "hybrid:mode=LFCP"),
    };
    std::vector<Outcome> out = r3.runSweep(cells, 2);
    ASSERT_EQ(out.size(), 2u);
    for (const Outcome &o : out)
        EXPECT_GT(o.timePs, 0.0);
}

TEST(HybridPolicy, SharesTheProfilePlanButNotTheOutcomeKey)
{
    // Same pipeline shape as profile, so static plan numbers match;
    // distinct cache keys keep the outcomes apart.
    ExpConfig cfg = smallConfig();
    Runner r(cfg);
    Outcome prof =
        r.run("mpeg2_decode", PolicySpec::of("profile").set("d", 10.0));
    Outcome hyb =
        r.run("mpeg2_decode", PolicySpec::of("hybrid").set("d", 10.0));
    EXPECT_DOUBLE_EQ(prof.staticReconfigPoints,
                     hyb.staticReconfigPoints);
    EXPECT_DOUBLE_EQ(prof.staticInstrPoints, hyb.staticInstrPoints);
    EXPECT_NE(r.cacheKey("mpeg2_decode",
                         PolicySpec::of("profile").set("d", 10.0)),
              r.cacheKey("mpeg2_decode",
                         PolicySpec::of("hybrid").set("d", 10.0)));
}
