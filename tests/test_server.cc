/**
 * @file
 * The sweep-server test suite: golden request/response transcripts
 * pinned byte-for-byte, the fault-injection sweep (drop / truncate /
 * garble / slow-loris / mid-frame disconnect — structured errors or
 * clean disconnects, never a crash or hang), admission control,
 * per-request deadlines, graceful drain, program upload, and the
 * acceptance gate: N concurrent clients on overlapping cells get
 * byte-identical results to a serial in-process run, with duplicate
 * cells computed exactly once (asserted via the runner's memo
 * counters).
 *
 * Every read carries a bounded deadline, so a regression hangs a
 * single EXPECT, not the whole suite.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment.hh"
#include "srv/client.hh"
#include "srv/faults.hh"
#include "srv/net.hh"
#include "srv/proto.hh"
#include "srv/server.hh"
#include "workload/registry.hh"

using namespace mcd;

namespace
{

/** Watchdog for every blocking read in this suite. */
constexpr int kIoMs = 60'000;

/** Small windows so cells stay test-sized (mirrors
 *  test_exp_parallel.cc). */
mcd::exp::ExpConfig
smallExp()
{
    mcd::exp::ExpConfig cfg;
    cfg.productionWindow = 8'000;
    cfg.analysisWindow = 8'000;
    cfg.offlineInterval = 4'000;
    cfg.jobs = 2;
    cfg.cacheFile.clear();
    return cfg;
}

srv::ServerConfig
smallServer()
{
    srv::ServerConfig cfg;
    cfg.tcpPort = 0;  // ephemeral
    cfg.exp = smallExp();
    return cfg;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** start()s on construction, stop()s on destruction. */
struct ScopedServer
{
    srv::SweepServer server;

    explicit ScopedServer(srv::ServerConfig cfg = smallServer())
        : server(std::move(cfg))
    {
        server.start();
    }
    ~ScopedServer() { server.stop(); }

    srv::Client client()
    {
        return srv::Client::connectTcp(server.tcpPort());
    }
    srv::Conn raw() { return srv::connectTcp(server.tcpPort()); }
};

/** Read one line or fail the test; never blocks past the watchdog. */
std::string
readLineChecked(srv::Conn &conn, int timeout_ms = kIoMs)
{
    std::string line;
    srv::Conn::ReadStatus st =
        conn.readLine(line, timeout_ms, 256 * 1024);
    EXPECT_EQ(st, srv::Conn::ReadStatus::Line)
        << "readLine status " << static_cast<int>(st);
    return line;
}

/** The serial in-process reference for one cell: what `mcd_client
 *  --local --jobs 1` prints, and what every remote row must match
 *  byte-for-byte. */
std::vector<std::string>
referenceLines(const mcd::exp::ExpConfig &cfg,
               const std::vector<std::string> &workloads,
               const std::vector<std::string> &policies)
{
    mcd::exp::ExpConfig serial = cfg;
    serial.jobs = 1;
    mcd::exp::Runner runner(serial);
    std::vector<std::string> lines;
    for (const auto &w : workloads) {
        std::string canonW = workload::canonicalWorkloadSpec(w);
        for (const auto &p : policies) {
            control::PolicySpec spec;
            std::string err;
            EXPECT_TRUE(control::parseSpec(p, spec, err)) << err;
            EXPECT_TRUE(
                control::PolicyRegistry::instance().canonicalize(
                    spec, err))
                << err;
            mcd::exp::Outcome o = runner.run(canonW, spec);
            lines.push_back(
                srv::resultLine(canonW, spec.str(), o));
        }
    }
    return lines;
}

const char *const kTinyProgram = R"(
program: name=tiny_srv, entry=main
input: set=train, seed=3, scale=1.0
input: set=ref, seed=4, scale=1.3
mix: id=a, load=0.3, branch=0.1, ws=1048576, stream=0.3
func: name=main
  loop: trips=6, scale=1.0
    block: mix=a, n=50
  end
)";

} // namespace

// ---------------------------------------------------------------- //
// Golden transcripts                                               //
// ---------------------------------------------------------------- //

TEST(ServerTranscript, HelloPingQuitGolden)
{
    ScopedServer s;
    srv::Conn conn = s.raw();

    ASSERT_TRUE(conn.writeLine("MCD/2 HELLO id=t1"));
    EXPECT_EQ(readLineChecked(conn),
              "MCD/2 OK id=t1 proto=2 fingerprint=" +
                  hex16(s.server.fingerprint()) +
                  " window=8000 jobs=2");

    ASSERT_TRUE(conn.writeLine("MCD/2 PING"));
    EXPECT_EQ(readLineChecked(conn), "MCD/2 OK");

    ASSERT_TRUE(conn.writeLine("MCD/2 QUIT id=bye"));
    EXPECT_EQ(readLineChecked(conn), "MCD/2 BYE id=bye");

    // After BYE the server closes its side.
    std::string rest;
    EXPECT_EQ(conn.readLine(rest, kIoMs, 1024),
              srv::Conn::ReadStatus::Eof);
}

TEST(ServerTranscript, SweepRowAndDoneGolden)
{
    srv::ServerConfig cfg = smallServer();
    ScopedServer s(cfg);
    std::vector<std::string> ref =
        referenceLines(cfg.exp, {"gsm_decode"}, {"baseline"});
    ASSERT_EQ(ref.size(), 1u);

    srv::Conn conn = s.raw();
    ASSERT_TRUE(conn.writeLine(
        "MCD/2 SWEEP id=s1 workload=gsm_decode policy=baseline"));
    EXPECT_EQ(readLineChecked(conn),
              "MCD/2 ROW id=s1 " + ref[0] + " memo=miss");
    EXPECT_EQ(readLineChecked(conn),
              "MCD/2 DONE id=s1 rows=1 hits=0 misses=1");
}

TEST(ServerTranscript, ChipSweepRowsGolden)
{
    srv::ServerConfig cfg = smallServer();
    ScopedServer s(cfg);

    // The serial in-process reference: the same ChipCell through a
    // jobs=1 Runner, labelled exactly as the server labels its rows.
    mcd::exp::ExpConfig serial = cfg.exp;
    serial.jobs = 1;
    mcd::exp::Runner runner(serial);
    mcd::exp::ChipCell cell;
    cell.workload = "multi:t0=gsm_decode,t1=adpcm_decode";
    auto rows = runner.runChip(cell);
    ASSERT_EQ(rows.size(), 3u);

    srv::Conn conn = s.raw();
    ASSERT_TRUE(conn.writeLine(
        "MCD/2 SWEEP id=ch1 "
        "workload=multi:t0=gsm_decode,t1=adpcm_decode "
        "policy=baseline tiles=0"));
    for (std::size_t k = 0; k < rows.size(); ++k)
        EXPECT_EQ(readLineChecked(conn),
                  "MCD/2 ROW id=ch1 tile=" + srv::tileLabel(k, 2) +
                      ' ' +
                      srv::resultLine(
                          "multi:t0=gsm_decode,t1=adpcm_decode",
                          "baseline", rows[k]) +
                      " memo=miss");
    EXPECT_EQ(readLineChecked(conn),
              "MCD/2 DONE id=ch1 rows=3 hits=0 misses=3");

    // The same cell again is served entirely from the memo.
    ASSERT_TRUE(conn.writeLine(
        "MCD/2 SWEEP id=ch2 "
        "workload=multi:t0=gsm_decode,t1=adpcm_decode "
        "policy=baseline tiles=0"));
    for (std::size_t k = 0; k < rows.size(); ++k)
        readLineChecked(conn);
    EXPECT_EQ(readLineChecked(conn),
              "MCD/2 DONE id=ch2 rows=3 hits=3 misses=0");
}

TEST(ServerTranscript, ChipSweepBadSpecsAreStructured)
{
    ScopedServer s;
    srv::Conn conn = s.raw();

    // coord= without tiles= is a grammar error, not a spec error.
    ASSERT_TRUE(conn.writeLine(
        "MCD/2 SWEEP id=cb1 workload=gsm_decode policy=baseline "
        "coord=chip-coord:hi=0.5"));
    EXPECT_EQ(readLineChecked(conn),
              "MCD/2 ERR code=bad-request msg=coord= needs tiles= "
              "(chip sweeps only)");

    // A tile policy that cannot drive tiles names the capable ones.
    ASSERT_TRUE(conn.writeLine(
        "MCD/2 SWEEP id=cb2 workload=gsm_decode policy=profile "
        "tiles=2"));
    std::string line = readLineChecked(conn);
    EXPECT_NE(line.find("ERR id=cb2 code=bad-spec"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("tile-capable"), std::string::npos) << line;

    // A malformed co-schedule surfaces the multi: grammar message.
    ASSERT_TRUE(conn.writeLine(
        "MCD/2 SWEEP id=cb3 workload=multi:t0=gsm_decode,t5=mcf "
        "policy=baseline tiles=0"));
    line = readLineChecked(conn);
    EXPECT_NE(line.find("ERR id=cb3 code=bad-spec"),
              std::string::npos)
        << line;

    // The connection survives all of it.
    ASSERT_TRUE(conn.writeLine("MCD/2 PING"));
    EXPECT_EQ(readLineChecked(conn), "MCD/2 OK");
}

TEST(ServerTranscript, ErrorRepliesGolden)
{
    ScopedServer s;
    srv::Conn conn = s.raw();

    const struct
    {
        const char *request;
        const char *reply;
    } cases[] = {
        {"garbage in",
         "MCD/2 ERR code=bad-request msg=bad protocol tag "
         "'garbage' (expected MCD/2)"},
        {"MCD/9 PING",
         "MCD/2 ERR code=bad-request msg=unsupported protocol "
         "version 'MCD/9' (this server speaks MCD/2)"},
        {"MCD/2 FROB",
         "MCD/2 ERR code=bad-request msg=unknown verb 'FROB'"},
        {"MCD/2  PING",
         "MCD/2 ERR code=bad-request msg=empty token (stray "
         "space) at byte 6"},
        {"MCD/2 SWEEP policy=baseline",
         "MCD/2 ERR code=bad-request msg=SWEEP needs at least one "
         "workload= and one policy="},
        {"MCD/2 SWEEP id=w workload=gsm_decode policy=baseline "
         "window=0",
         "MCD/2 ERR code=bad-request msg=bad window '0'"},
        {"MCD/2 PING frob=1",
         "MCD/2 ERR code=bad-request msg=unknown key 'frob' for "
         "verb PING"},
    };
    // The connection survives every one of these: a malformed frame
    // poisons the request, not the session.
    for (const auto &c : cases) {
        ASSERT_TRUE(conn.writeLine(c.request)) << c.request;
        EXPECT_EQ(readLineChecked(conn), c.reply) << c.request;
    }
    ASSERT_TRUE(conn.writeLine("MCD/2 PING"));
    EXPECT_EQ(readLineChecked(conn), "MCD/2 OK");
}

TEST(ServerTranscript, BadSpecsNameTheRegistries)
{
    ScopedServer s;
    srv::Conn conn = s.raw();

    ASSERT_TRUE(conn.writeLine(
        "MCD/2 SWEEP id=b1 workload=no_such policy=baseline"));
    std::string line = readLineChecked(conn);
    EXPECT_NE(line.find("ERR id=b1 code=bad-spec"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("known:"), std::string::npos) << line;

    ASSERT_TRUE(conn.writeLine(
        "MCD/2 SWEEP id=b2 workload=gsm_decode policy=no_such"));
    line = readLineChecked(conn);
    EXPECT_NE(line.find("ERR id=b2 code=bad-spec"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("known:"), std::string::npos) << line;

    // A known policy with a junk parameter lists what it takes.
    ASSERT_TRUE(conn.writeLine(
        "MCD/2 SWEEP id=b3 workload=gsm_decode policy=offline:z=1"));
    line = readLineChecked(conn);
    EXPECT_NE(line.find("ERR id=b3 code=bad-spec"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("takes:"), std::string::npos) << line;
}

// ---------------------------------------------------------------- //
// Framing robustness                                               //
// ---------------------------------------------------------------- //

TEST(ServerFraming, PartialFramesAssemble)
{
    ScopedServer s;
    srv::Conn conn = s.raw();
    // One frame dribbled across three writes, plus the start of the
    // next — the reader must assemble on '\n', not on recv()
    // boundaries.
    ASSERT_TRUE(conn.writeAll("MCD/2 PI"));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(conn.writeAll("NG id="));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(conn.writeAll("p1\nMCD/2 PING id=p2\n"));
    EXPECT_EQ(readLineChecked(conn), "MCD/2 OK id=p1");
    EXPECT_EQ(readLineChecked(conn), "MCD/2 OK id=p2");
}

TEST(ServerFraming, OversizeFrameRejectedAndClosed)
{
    srv::ServerConfig cfg = smallServer();
    cfg.maxLineBytes = 256;
    ScopedServer s(cfg);
    srv::Conn conn = s.raw();
    std::string big = "MCD/2 PING id=";
    big.append(1000, 'x');
    ASSERT_TRUE(conn.writeLine(big));
    std::string line = readLineChecked(conn);
    EXPECT_NE(line.find("code=too-large"), std::string::npos)
        << line;
    std::string rest;
    EXPECT_EQ(conn.readLine(rest, kIoMs, 1024),
              srv::Conn::ReadStatus::Eof);
}

TEST(ServerFraming, SlowLorisIsDisconnected)
{
    srv::ServerConfig cfg = smallServer();
    cfg.idleTimeoutMs = 300;
    ScopedServer s(cfg);
    srv::Conn conn = s.raw();
    // ~11 bytes at 100ms apart cannot finish inside 300ms; the
    // deadline runs from the first byte, so trickling does not help.
    srv::injectSend(conn, "MCD/2 PING", srv::Fault::SlowLoris,
                    /*seed=*/1, /*dribble_ms=*/100);
    std::string line;
    srv::Conn::ReadStatus st = conn.readLine(line, kIoMs, 4096);
    if (st == srv::Conn::ReadStatus::Line) {
        EXPECT_NE(line.find("code=timeout"), std::string::npos)
            << line;
        EXPECT_EQ(conn.readLine(line, kIoMs, 4096),
                  srv::Conn::ReadStatus::Eof);
    } else {
        // The peer may drop us without the courtesy line if our
        // dribble raced the shutdown of the write side.
        EXPECT_EQ(st, srv::Conn::ReadStatus::Eof);
    }
    // The server itself is unharmed.
    srv::Client probe = s.client();
    probe.ping();
}

TEST(ServerFaults, EveryFaultLeavesTheServerServing)
{
    ScopedServer s;
    const std::string sweep =
        "MCD/2 SWEEP id=f1 workload=gsm_decode policy=baseline";
    for (srv::Fault f : srv::allFaults()) {
        SCOPED_TRACE(srv::faultName(f));
        for (std::uint32_t seed = 1; seed <= 4; ++seed) {
            srv::Conn conn = s.raw();
            srv::injectSend(conn, sweep, f, seed,
                            /*dribble_ms=*/1);
            // Drain whatever the server says (rows, a structured
            // error, or nothing) without ever blocking long.
            std::string line;
            for (int i = 0; i < 16; ++i) {
                srv::Conn::ReadStatus st =
                    conn.readLine(line, 2'000, 256 * 1024);
                if (st != srv::Conn::ReadStatus::Line)
                    break;
            }
            conn.close();
        }
        // After every abuse round the server still answers cleanly.
        srv::Client probe = s.client();
        probe.ping();
    }
}

TEST(ServerFaults, MidSweepDisconnectLeavesServerHealthy)
{
    ScopedServer s;
    {
        srv::Conn conn = s.raw();
        ASSERT_TRUE(
            conn.writeLine("MCD/2 SWEEP id=d1 "
                           "workload=gsm_decode "
                           "workload=adpcm_decode "
                           "policy=baseline policy=offline:d=10"));
        // Take one row, then vanish mid-stream.
        readLineChecked(conn);
        conn.close();
    }
    // The abandoned cells drain (admission slots come back) and the
    // same sweep then completes for a well-behaved client.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(30);
    while (s.server.stats().inflightCells != 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "inflight cells never drained";
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    srv::Client client = s.client();
    srv::SweepReply reply =
        client.sweep({"gsm_decode", "adpcm_decode"},
                     {"baseline", "offline:d=10"});
    EXPECT_EQ(reply.rows.size(), 4u);
}

// ---------------------------------------------------------------- //
// Admission control and deadlines                                  //
// ---------------------------------------------------------------- //

TEST(ServerAdmission, OverloadRejectedWithRetryHint)
{
    srv::ServerConfig cfg = smallServer();
    cfg.queueLimit = 0;  // every cell overflows the queue
    cfg.retryAfterMs = 123;
    ScopedServer s(cfg);
    srv::Client client = s.client();
    try {
        client.sweep({"gsm_decode"}, {"baseline"});
        FAIL() << "expected overload";
    } catch (const srv::ClientError &e) {
        EXPECT_EQ(e.code(), srv::err::OVERLOAD);
        EXPECT_EQ(e.retryMs(), 123);
    }
    EXPECT_EQ(s.server.stats().rejectedOverload, 1u);
}

TEST(ServerAdmission, TooManyCellsRejected)
{
    srv::ServerConfig cfg = smallServer();
    cfg.maxCellsPerRequest = 2;
    ScopedServer s(cfg);
    srv::Client client = s.client();
    try {
        client.sweep({"gsm_decode", "adpcm_decode"},
                     {"baseline", "offline:d=10"});
        FAIL() << "expected too-large";
    } catch (const srv::ClientError &e) {
        EXPECT_EQ(e.code(), srv::err::TOO_LARGE);
    }
}

TEST(ServerAdmission, WindowPoolIsBounded)
{
    srv::ServerConfig cfg = smallServer();
    cfg.maxWindows = 1;
    ScopedServer s(cfg);
    srv::Client client = s.client();
    EXPECT_EQ(
        client.sweep({"gsm_decode"}, {"baseline"}, /*window=*/4'000)
            .rows.size(),
        1u);
    try {
        client.sweep({"gsm_decode"}, {"baseline"}, /*window=*/5'000);
        FAIL() << "expected window-pool rejection";
    } catch (const srv::ClientError &e) {
        EXPECT_EQ(e.code(), srv::err::TOO_LARGE);
        EXPECT_NE(std::string(e.what()).find("window pool"),
                  std::string::npos);
    }
}

TEST(ServerAdmission, ConfigMismatchRejected)
{
    ScopedServer s;
    srv::Conn conn = s.raw();
    ASSERT_TRUE(conn.writeLine(
        "MCD/2 SWEEP id=c1 workload=gsm_decode policy=baseline "
        "fingerprint=0000000000000001"));
    std::string line = readLineChecked(conn);
    EXPECT_NE(line.find("ERR id=c1 code=config-mismatch"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find(hex16(s.server.fingerprint())),
              std::string::npos)
        << line;
}

TEST(ServerAdmission, DeadlineIsStructuredAndMemoStaysWarm)
{
    srv::ServerConfig cfg;
    cfg.tcpPort = 0;
    cfg.exp.jobs = 2;
    cfg.exp.cacheFile.clear();
    // Default (150k-instruction) windows: the cell takes well over
    // the 1ms deadline on any machine.
    cfg.requestTimeoutMs = 1;
    ScopedServer s(cfg);
    srv::Client client = s.client();
    try {
        client.sweep({"gsm_decode"}, {"offline:d=10"});
        FAIL() << "expected timeout";
    } catch (const srv::ClientError &e) {
        EXPECT_EQ(e.code(), srv::err::TIMEOUT);
    }
    EXPECT_GE(s.server.stats().timeouts, 1u);
    // The abandoned cells keep computing and warm the memo; a retry
    // eventually answers within the same 1ms deadline.
    srv::SweepReply reply;
    bool done = false;
    for (int attempt = 0; attempt < 300 && !done; ++attempt) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
        try {
            reply = client.sweep({"gsm_decode"}, {"offline:d=10"});
            done = true;
        } catch (const srv::ClientError &e) {
            ASSERT_EQ(e.code(), srv::err::TIMEOUT) << e.what();
        }
    }
    ASSERT_TRUE(done) << "memo never warmed up";
    ASSERT_EQ(reply.rows.size(), 1u);
    EXPECT_TRUE(reply.rows[0].memoHit);
}

// ---------------------------------------------------------------- //
// Drain                                                            //
// ---------------------------------------------------------------- //

TEST(ServerDrain, AdmittedSweepFinishesThroughStop)
{
    auto s = std::make_unique<ScopedServer>();
    srv::Conn conn = s->raw();
    ASSERT_TRUE(conn.writeLine(
        "MCD/2 SWEEP id=g1 workload=gsm_decode "
        "workload=adpcm_decode policy=baseline "
        "policy=offline:d=10"));
    // First row proves the request was admitted, then stop() races
    // the remaining stream: a clean drain must deliver every row.
    std::string first = readLineChecked(conn);
    EXPECT_NE(first.find("MCD/2 ROW id=g1"), std::string::npos)
        << first;
    std::thread stopper([&] { s->server.stop(); });
    int rows = 1;
    bool done = false;
    for (int i = 0; i < 16 && !done; ++i) {
        std::string line = readLineChecked(conn);
        if (line.find("MCD/2 DONE id=g1") != std::string::npos) {
            EXPECT_NE(line.find("rows=4"), std::string::npos)
                << line;
            done = true;
        } else {
            EXPECT_NE(line.find("MCD/2 ROW id=g1"),
                      std::string::npos)
                << line;
            ++rows;
        }
    }
    stopper.join();
    EXPECT_TRUE(done);
    EXPECT_EQ(rows, 4);
    EXPECT_FALSE(s->server.running());
}

// ---------------------------------------------------------------- //
// Program upload                                                   //
// ---------------------------------------------------------------- //

TEST(ServerProg, UploadRoundTripMatchesLocal)
{
    srv::ServerConfig cfg = smallServer();
    ScopedServer s(cfg);
    srv::Client client = s.client();
    std::string handle = client.uploadProgram(kTinyProgram);
    EXPECT_EQ(handle.rfind("prog:name=tiny_srv,hash=", 0), 0u)
        << handle;
    // Server-side registration is content-addressed like the local
    // path, so the handles and the results agree byte-for-byte.
    EXPECT_EQ(
        workload::WorkloadRegistry::instance().addProgram(
            kTinyProgram),
        handle);
    srv::SweepReply reply = client.sweep({handle}, {"baseline"});
    ASSERT_EQ(reply.rows.size(), 1u);
    std::vector<std::string> ref =
        referenceLines(cfg.exp, {handle}, {"baseline"});
    EXPECT_EQ(srv::resultLine(reply.rows[0].workload,
                              reply.rows[0].policy,
                              reply.rows[0].outcome),
              ref[0]);
}

TEST(ServerProg, OversizeUploadRejected)
{
    srv::ServerConfig cfg = smallServer();
    cfg.maxProgLines = 2;
    ScopedServer s(cfg);
    srv::Client client = s.client();
    try {
        client.uploadProgram(kTinyProgram);
        FAIL() << "expected too-large";
    } catch (const srv::ClientError &e) {
        EXPECT_EQ(e.code(), srv::err::TOO_LARGE);
    }
}

TEST(ServerProg, BadProgramTextIsACatchableError)
{
    ScopedServer s;
    srv::Client client = s.client();
    try {
        client.uploadProgram("program: name=broken\nfunc: nope\n");
        FAIL() << "expected bad-spec";
    } catch (const srv::ClientError &e) {
        EXPECT_EQ(e.code(), srv::err::BAD_SPEC);
    }
    client.ping();  // the connection survives a bad upload
}

TEST(ServerProg, TruncatedUploadDoesNotHang)
{
    srv::ServerConfig cfg = smallServer();
    cfg.idleTimeoutMs = 300;
    ScopedServer s(cfg);
    srv::Conn conn = s.raw();
    ASSERT_TRUE(conn.writeLine("MCD/2 PROG id=p1 lines=5"));
    ASSERT_TRUE(conn.writeLine("program: name=half"));
    conn.shutdownWrite();  // the other four lines never arrive
    std::string line;
    srv::Conn::ReadStatus st = conn.readLine(line, kIoMs, 4096);
    if (st == srv::Conn::ReadStatus::Line)
        EXPECT_NE(line.find("code=bad-request"), std::string::npos)
            << line;
    else
        EXPECT_EQ(st, srv::Conn::ReadStatus::Eof);
    srv::Client probe = s.client();
    probe.ping();
}

// ---------------------------------------------------------------- //
// Transports and client API                                        //
// ---------------------------------------------------------------- //

TEST(ServerTransport, UnixSocketServes)
{
    srv::ServerConfig cfg = smallServer();
    cfg.tcpPort = -1;
    cfg.unixPath = ::testing::TempDir() + "mcd_test_server.sock";
    ScopedServer s(cfg);
    srv::Client client =
        srv::Client::connectUnix(s.server.unixSocketPath());
    client.hello();
    EXPECT_EQ(client.serverFingerprint(), s.server.fingerprint());
    srv::SweepReply reply = client.sweep(
        {"gsm_decode"}, {"baseline"}, 0, 0, /*pin=*/true);
    EXPECT_EQ(reply.rows.size(), 1u);
}

TEST(ServerTransport, StatsCountersProgress)
{
    ScopedServer s;
    srv::Client client = s.client();
    client.hello();
    client.sweep({"gsm_decode"}, {"baseline", "offline:d=10"});
    srv::ServerStats st = s.server.stats();
    EXPECT_GE(st.connections, 1u);
    EXPECT_EQ(st.admitted, 2u);
    EXPECT_EQ(st.rowsStreamed, 2u);
    EXPECT_EQ(st.inflightCells, 0u);
    EXPECT_GE(st.memoMisses, 2u);
    // The wire STATS payload carries the same counters.
    auto fields = client.stats();
    bool sawRows = false;
    for (const auto &kv : fields)
        if (kv.first == "rows") {
            EXPECT_EQ(kv.second, "2");
            sawRows = true;
        }
    EXPECT_TRUE(sawRows);
}

TEST(ServerTransport, ClientChipSweepStreamsLabelledRows)
{
    ScopedServer s;
    srv::Client client = s.client();
    client.hello();
    srv::SweepReply reply = client.sweep(
        {"multi:t0=gsm_decode,t1=adpcm_decode"}, {"baseline"}, 0, 0,
        /*pin=*/true, /*tiles=*/0);
    ASSERT_EQ(reply.rows.size(), 3u);
    EXPECT_EQ(reply.rows[0].tile, "0");
    EXPECT_EQ(reply.rows[1].tile, "1");
    EXPECT_EQ(reply.rows[2].tile, "u");
    for (const auto &row : reply.rows) {
        EXPECT_EQ(row.workload,
                  "multi:t0=gsm_decode,t1=adpcm_decode");
        EXPECT_EQ(row.policy, "baseline");
    }

    // A replicated workload with a coordinator travels the same way.
    srv::SweepReply coord = client.sweep(
        {"gsm_decode"}, {"baseline"}, 0, 0, /*pin=*/false,
        /*tiles=*/2, "chip-coord");
    ASSERT_EQ(coord.rows.size(), 3u);
    EXPECT_EQ(coord.rows[0].workload,
              "multi:t0=gsm_decode,t1=gsm_decode");

    // Single-core rows keep an empty tile label.
    srv::SweepReply plain =
        client.sweep({"gsm_decode"}, {"baseline"});
    ASSERT_EQ(plain.rows.size(), 1u);
    EXPECT_EQ(plain.rows[0].tile, "");
}

// ---------------------------------------------------------------- //
// The acceptance gate: concurrent clients, byte identity,          //
// duplicate suppression                                            //
// ---------------------------------------------------------------- //

TEST(ServerConcurrency, EightClientsByteIdenticalComputedOnce)
{
    srv::ServerConfig cfg = smallServer();
    cfg.exp.jobs = 4;
    cfg.queueLimit = 256;  // admit all 8 x 4 cells at once
    ScopedServer s(cfg);

    const std::vector<std::string> workloads = {"gsm_decode",
                                                "adpcm_decode"};
    const std::vector<std::string> policies = {"baseline",
                                               "offline:d=10"};
    std::vector<std::string> ref =
        referenceLines(cfg.exp, workloads, policies);
    ASSERT_EQ(ref.size(), 4u);

    constexpr std::size_t kClients = 8;
    std::vector<std::vector<std::string>> got(kClients);
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            try {
                srv::Client client =
                    srv::Client::connectTcp(s.server.tcpPort());
                client.hello();
                srv::SweepReply reply = client.sweep(
                    workloads, policies, 0, 0, /*pin=*/true);
                for (const auto &row : reply.rows)
                    got[t].push_back(srv::resultLine(
                        row.workload, row.policy, row.outcome));
            } catch (const std::exception &e) {
                errors[t] = e.what();
            }
        });
    }
    for (auto &th : threads)
        th.join();

    for (std::size_t t = 0; t < kClients; ++t) {
        EXPECT_EQ(errors[t], "") << "client " << t;
        // Byte-identical to the serial jobs=1 in-process reference,
        // in the same workload-major order.
        EXPECT_EQ(got[t], ref) << "client " << t;
    }
    // 8 clients x 4 overlapping cells, but only 4 distinct cells
    // were ever simulated: misses count the memo owners.
    srv::ServerStats st = s.server.stats();
    EXPECT_EQ(st.memoMisses, 4u);
    EXPECT_GE(st.memoHits, 8u * 4u - 4u);
    EXPECT_EQ(st.rowsStreamed, 8u * 4u);
}

// ---------------------------------------------------------------- //
// Wire-format units (no server needed)                             //
// ---------------------------------------------------------------- //

TEST(Proto, RequestRoundTrips)
{
    srv::Request req;
    req.verb = srv::Request::Verb::Sweep;
    req.id = "r1";
    req.workloads = {"gsm_decode", "gen:phases=4"};
    req.policies = {"baseline", "offline:d=10"};
    req.window = 9'000;
    req.timeoutMs = 1'500;
    req.hasFingerprint = true;
    req.fingerprint = 0xdeadbeef12345678ULL;
    req.hasTiles = true;
    req.tiles = 4;
    req.coord = "chip-coord:hi=0.5";

    srv::Request back;
    std::string err;
    ASSERT_TRUE(
        srv::parseRequest(srv::formatRequest(req), back, err))
        << err;
    EXPECT_EQ(back.id, "r1");
    EXPECT_EQ(back.workloads, req.workloads);
    EXPECT_EQ(back.policies, req.policies);
    EXPECT_EQ(back.window, 9'000u);
    EXPECT_EQ(back.timeoutMs, 1'500);
    EXPECT_TRUE(back.hasFingerprint);
    EXPECT_EQ(back.fingerprint, 0xdeadbeef12345678ULL);
    EXPECT_TRUE(back.hasTiles);
    EXPECT_EQ(back.tiles, 4u);
    EXPECT_EQ(back.coord, "chip-coord:hi=0.5");
    EXPECT_EQ(srv::formatRequest(back), srv::formatRequest(req));
}

TEST(Proto, TileLabelsSpellTilesThenUncore)
{
    EXPECT_EQ(srv::tileLabel(0, 2), "0");
    EXPECT_EQ(srv::tileLabel(1, 2), "1");
    EXPECT_EQ(srv::tileLabel(2, 2), "u");
}

TEST(Proto, ErrMsgSwallowsRestOfLine)
{
    std::string line = srv::errLine("x9", srv::err::OVERLOAD,
                                    "too much going on", 250);
    EXPECT_EQ(line, "MCD/2 ERR id=x9 code=overload retry_ms=250 "
                    "msg=too much going on");
    srv::Response resp;
    std::string err;
    ASSERT_TRUE(srv::parseResponse(line, resp, err)) << err;
    EXPECT_EQ(resp.kind, srv::Response::Kind::Err);
    EXPECT_EQ(resp.id, "x9");
    EXPECT_EQ(resp.field("code"), "overload");
    EXPECT_EQ(resp.field("retry_ms"), "250");
    EXPECT_EQ(resp.msg, "too much going on");
}

TEST(Proto, OutcomeRoundTripIsByteExact)
{
    control::Outcome o;
    o.timePs = 14195017;
    o.energyNj = 21084.43305999762;
    o.reconfigs = 3;
    o.metrics.slowdownPct = 9.0795453080471837;
    o.metrics.energySavingsPct = 32.063927348855167;
    o.metrics.energyDelayImprovementPct = 25.895640851986624;
    std::string wire = srv::formatOutcome(o);
    srv::Response resp;
    std::string err;
    ASSERT_TRUE(srv::parseResponse("MCD/2 ROW " + wire, resp, err))
        << err;
    control::Outcome back;
    ASSERT_TRUE(srv::parseOutcome(resp.fields, back, err)) << err;
    // Precision-17 %g round-trips doubles exactly, so a second
    // format pass yields identical bytes — the property the
    // local/remote byte-identity gate rests on.
    EXPECT_EQ(srv::formatOutcome(back), wire);
}

TEST(Proto, ErrorCodeListIsComplete)
{
    const auto &codes = srv::errorCodes();
    EXPECT_EQ(codes.size(), 8u);
    for (const char *c :
         {srv::err::BAD_REQUEST, srv::err::BAD_SPEC,
          srv::err::TOO_LARGE, srv::err::OVERLOAD, srv::err::TIMEOUT,
          srv::err::CONFIG_MISMATCH, srv::err::SHUTTING_DOWN,
          srv::err::INTERNAL}) {
        EXPECT_NE(std::find(codes.begin(), codes.end(), c),
                  codes.end())
            << c;
    }
}
