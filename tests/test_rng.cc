/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "util/rng.hh"

using mcd::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BelowStaysInBound)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        auto v = r.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, NormalMoments)
{
    Rng r(17);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double v = r.normal(10.0, 2.0);
        sum += v;
        sq += (v - 10.0) * (v - 10.0);
    }
    EXPECT_NEAR(sum / n, 10.0, 0.05);
    EXPECT_NEAR(sq / n, 4.0, 0.15);
}

TEST(Rng, ClampedNormalRespectsLimit)
{
    Rng r(19);
    for (int i = 0; i < 20000; ++i) {
        double v = r.clampedNormal(0.0, 50.0, 110.0);
        ASSERT_GE(v, -110.0);
        ASSERT_LE(v, 110.0);
    }
}

TEST(Rng, ForkIndependentButDeterministic)
{
    Rng a(23), b(23);
    Rng fa = a.fork();
    Rng fb = b.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fa.next(), fb.next());
}
