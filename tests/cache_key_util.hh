/**
 * @file
 * Shared cache-key schema pins for the test suites.
 *
 * Every memo/CSV key the Runner produces is
 *
 *     <tag><16-hex config fingerprint>|<canonical policy spec>|
 *     <canonical workload spec>|<contextKey>
 *
 * where <tag> is "v<CACHE_VERSION>|c".  Three suites pin this layout
 * (test_policy, test_generate, test_sampling); hoisting the tag and
 * the prefix width here means a CACHE_VERSION bump touches exactly
 * one line instead of three files.  The per-suite *tail* strings stay
 * in their suites — they pin canonical spec spelling, not the schema.
 */

#ifndef MCD_TESTS_CACHE_KEY_UTIL_HH
#define MCD_TESTS_CACHE_KEY_UTIL_HH

#include <cstddef>
#include <string>

namespace mcd::testpins
{

/** Schema tag every cache key must start with.  Bump alongside
 *  CACHE_VERSION in src/exp/experiment.cc (the cache-version-pin
 *  lint keeps the two honest). */
inline constexpr char CACHE_KEY_TAG[] = "v9|c";

/** Tag plus the 16-hex config fingerprint that follows it. */
inline constexpr std::size_t CACHE_KEY_PREFIX_LEN =
    sizeof(CACHE_KEY_TAG) - 1 + 16;

/** True iff the key starts with the current schema tag. */
inline bool
hasCacheKeyTag(const std::string &key)
{
    return key.rfind(CACHE_KEY_TAG, 0) == 0;
}

/** Everything after the tag + fingerprint: "|<policy>|<workload>|
 *  <context>".  Suites compare this against their pinned spellings. */
inline std::string
cacheKeyTail(const std::string &key)
{
    return key.substr(CACHE_KEY_PREFIX_LEN);
}

} // namespace mcd::testpins

#endif
